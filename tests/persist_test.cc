// Durable on-disk archives: the snapshot container (magic + version +
// per-section CRC32C + optional LZSS), Store::SaveToFile /
// StoreRegistry::OpenFromFile round-trips over all nine backends (through
// the posix, mmap, and in-memory VFS backends), the append-only ingest log
// with torn-tail recovery, and the corrupt-input behavior of every decode
// path. Log and durable-store tests run entirely on MemVfs — no temp-dir
// churn, and "crash" is just dropping the writer.

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <string>
#include <tuple>
#include <vector>

#include "persist/container.h"
#include "persist/crc32c.h"
#include "persist/log.h"
#include "persist/wire.h"
#include "synth/words.h"
#include "util/random.h"
#include "vfs/mem_vfs.h"
#include "vfs/vfs.h"
#include "xarch/durable.h"
#include "xarch/store.h"
#include "xarch/store_registry.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xarch {
namespace {

constexpr const char* kKeys = R"(
(/, (db, {}))
(/db, (entry, {id}))
(/db/entry, (note, {}))
)";

keys::KeySpecSet MustSpec() {
  auto spec = keys::ParseKeySpecSet(kKeys);
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  return std::move(spec).value();
}

StoreOptions OptionsWithSpec() {
  StoreOptions options;
  options.spec = MustSpec();
  options.checkpoint_every = 3;
  return options;
}

/// Versions of a small keyed database (same generator family as
/// store_test): inserts, edits, and deletions so diffs and history are
/// non-trivial.
class WordsVersions {
 public:
  explicit WordsVersions(uint64_t seed) : rng_(seed) {
    for (int i = 0; i < 8; ++i) Insert();
  }

  std::string Next() {
    for (int m = 0; m < 2 && !entries_.empty(); ++m) {
      entries_[rng_.Uniform(0, entries_.size() - 1)].second =
          synth::Sentence(rng_, 3, 8);
    }
    Insert();
    if (entries_.size() > 5 && rng_.Uniform(0, 2) == 0) {
      entries_.erase(entries_.begin() + rng_.Uniform(0, entries_.size() - 1));
    }
    std::string xml = "<db>";
    for (const auto& [id, note] : entries_) {
      xml += "<entry><id>" + std::to_string(id) + "</id><note>" + note +
             "</note></entry>";
    }
    xml += "</db>";
    return xml;
  }

 private:
  void Insert() {
    entries_.emplace_back(next_id_++, synth::Sentence(rng_, 3, 8));
  }

  Rng rng_;
  int next_id_ = 1;
  std::vector<std::pair<int, std::string>> entries_;
};

std::vector<std::string> Versions(uint64_t seed, int n) {
  WordsVersions gen(seed);
  std::vector<std::string> out;
  out.reserve(n);
  for (int v = 0; v < n; ++v) out.push_back(gen.Next());
  return out;
}

/// Fresh private scratch directory per test, removed on teardown.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag) {
    static std::atomic<uint64_t> counter{0};
    path_ = (std::filesystem::temp_directory_path() /
             ("xarch_persist_test_" + tag + "_" + std::to_string(::getpid()) +
              "_" + std::to_string(counter.fetch_add(1))))
                .string();
    std::filesystem::create_directories(path_);
  }
  ~ScratchDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }
  std::string File(const std::string& name) const {
    return (std::filesystem::path(path_) / name).string();
  }

 private:
  std::string path_;
};

std::string ReadAll(const std::string& path,
                    vfs::Vfs* vfs = vfs::Vfs::Posix()) {
  auto bytes = vfs->ReadFile(path);
  EXPECT_TRUE(bytes.ok()) << path << ": " << bytes.status().ToString();
  return bytes.ok() ? std::move(bytes).value() : std::string();
}

void WriteAll(const std::string& path, const std::string& bytes,
              vfs::Vfs* vfs = vfs::Vfs::Posix()) {
  auto file = vfs->OpenWritable(path, vfs::WriteMode::kTruncate);
  ASSERT_TRUE(file.ok()) << path << ": " << file.status().ToString();
  ASSERT_TRUE((*file)->Append(bytes).ok()) << path;
  ASSERT_TRUE((*file)->Close().ok()) << path;
}

// ----------------------------------------------------------------- crc32c

TEST(Crc32cTest, KnownVectors) {
  // The iSCSI check value for "123456789".
  EXPECT_EQ(persist::Crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(persist::Crc32c(""), 0u);
  // 32 zero bytes (another published CRC-32C vector).
  EXPECT_EQ(persist::Crc32c(std::string(32, '\0')), 0x8A9136AAu);
}

TEST(Crc32cTest, ExtendMatchesOneShot) {
  std::string data = "the quick brown fox jumps over the lazy dog";
  for (size_t split = 0; split <= data.size(); split += 7) {
    uint32_t crc = persist::Crc32cExtend(
        persist::Crc32c(data.substr(0, split)), data.substr(split));
    EXPECT_EQ(crc, persist::Crc32c(data)) << "split at " << split;
  }
}

TEST(Crc32cTest, MaskRoundTrips) {
  for (uint32_t v : {0u, 1u, 0xDEADBEEFu, 0xFFFFFFFFu}) {
    EXPECT_EQ(persist::UnmaskCrc(persist::MaskCrc(v)), v);
  }
}

TEST(Crc32cTest, HardwareDispatchMatchesSliceBy8) {
  // Crc32c() routes through runtime dispatch (SSE4.2 / ARMv8 CRC when the
  // CPU has it); the slice-by-8 table implementation is the pinned
  // reference. Random lengths 0..600 cover every alignment of the wide
  // (8-byte) and narrow (1-byte) hardware paths, including lengths below
  // one word.
  SCOPED_TRACE(std::string("impl=") + persist::Crc32cImplementation());
  Rng rng(0x32c);
  for (int trial = 0; trial < 1000; ++trial) {
    std::string data(rng.Uniform(0, 600), '\0');
    for (char& c : data) c = static_cast<char>(rng.Uniform(0, 255));
    EXPECT_EQ(persist::Crc32c(data),
              persist::internal::Crc32cSoftwareExtend(0, data))
        << "trial " << trial << " len " << data.size();
  }
}

TEST(Crc32cTest, HardwareDispatchMatchesSliceBy8SeededExtend) {
  // Seeded extension (mid-stream CRC state) must agree too — the ingest
  // log and container checksums both extend across fragments.
  Rng rng(0xc32);
  for (int trial = 0; trial < 200; ++trial) {
    std::string data(rng.Uniform(1, 300), '\0');
    for (char& c : data) c = static_cast<char>(rng.Uniform(0, 255));
    const uint32_t seed = static_cast<uint32_t>(rng.Uniform(0, 0xFFFFFFFFu));
    EXPECT_EQ(persist::Crc32cExtend(seed, data),
              persist::internal::Crc32cSoftwareExtend(seed, data))
        << "trial " << trial;
  }
}

// ------------------------------------------------------------------- wire

TEST(WireTest, CursorRejectsTruncation) {
  std::string bytes;
  persist::PutU64(7, &bytes);
  persist::PutBytes("hello", &bytes);
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    persist::Cursor cursor(std::string_view(bytes).substr(0, cut));
    uint64_t v = 0;
    std::string_view s;
    Status st = cursor.ReadU64(&v);
    if (st.ok()) st = cursor.ReadBytes(&s);
    EXPECT_FALSE(st.ok()) << "cut at " << cut;
    EXPECT_EQ(st.code(), StatusCode::kDataLoss) << "cut at " << cut;
  }
  persist::Cursor cursor(bytes);
  uint64_t v = 0;
  std::string_view s;
  ASSERT_TRUE(cursor.ReadU64(&v).ok());
  ASSERT_TRUE(cursor.ReadBytes(&s).ok());
  EXPECT_EQ(v, 7u);
  EXPECT_EQ(s, "hello");
  EXPECT_TRUE(cursor.ExpectDone().ok());
}

TEST(WireTest, DeclaredLengthBeyondInputIsDataLoss) {
  std::string bytes;
  persist::PutU64(1000, &bytes);  // length prefix promising 1000 bytes
  bytes += "abc";
  persist::Cursor cursor(bytes);
  std::string_view s;
  Status st = cursor.ReadBytes(&s);
  EXPECT_EQ(st.code(), StatusCode::kDataLoss);
}

// -------------------------------------------------------------- container

TEST(ContainerTest, RoundTripsSections) {
  persist::SnapshotWriter writer;
  writer.Add("backend", "archive");
  writer.Add("empty", "");
  std::string big(4096, 'x');
  for (size_t i = 0; i < big.size(); i += 17) big[i] = 'y';
  writer.Add("big", big);
  std::string bytes = writer.Serialize();

  auto reader = persist::SnapshotReader::Parse(bytes);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(reader->names(),
            (std::vector<std::string>{"backend", "empty", "big"}));
  EXPECT_EQ(*reader->Section("backend"), "archive");
  EXPECT_EQ(*reader->Section("empty"), "");
  EXPECT_EQ(*reader->Section("big"), big);
  EXPECT_EQ(reader->FindSection("absent"), nullptr);
  EXPECT_EQ(reader->Section("absent").status().code(), StatusCode::kDataLoss);
  // The repetitive section got LZSS-compressed inside the container.
  EXPECT_LT(bytes.size(), big.size());
}

TEST(ContainerTest, EveryFlippedByteIsDetected) {
  persist::SnapshotWriter writer;
  writer.Add("backend", "archive");
  writer.Add("payload", "some payload bytes that matter");
  const std::string good = writer.Serialize();
  ASSERT_TRUE(persist::SnapshotReader::Parse(good).ok());

  for (size_t i = 0; i < good.size(); ++i) {
    std::string bad = good;
    bad[i] = static_cast<char>(bad[i] ^ 0x40);
    auto reader = persist::SnapshotReader::Parse(bad);
    // Every single-byte flip must be caught: header bytes by the header
    // CRC or magic check, section bytes by their section CRC.
    EXPECT_FALSE(reader.ok()) << "flip at byte " << i;
    EXPECT_EQ(reader.status().code(), StatusCode::kDataLoss)
        << "flip at byte " << i << ": " << reader.status().ToString();
  }
}

TEST(ContainerTest, EveryTruncationIsDetected) {
  persist::SnapshotWriter writer;
  writer.Add("a", "first section");
  writer.Add("b", "second section");
  const std::string good = writer.Serialize();
  for (size_t cut = 0; cut < good.size(); ++cut) {
    auto reader = persist::SnapshotReader::Parse(good.substr(0, cut));
    EXPECT_FALSE(reader.ok()) << "cut at " << cut;
  }
}

TEST(ContainerTest, UnsupportedVersionIsRejected) {
  persist::SnapshotWriter writer;
  writer.Add("backend", "archive");
  std::string bytes = writer.Serialize();
  bytes[4] = 99;  // format version field
  // Bumping the version also breaks the header CRC; rewrite it so the
  // version check itself is exercised.
  uint32_t crc = persist::MaskCrc(persist::Crc32c(bytes.substr(0, 12)));
  for (int i = 0; i < 4; ++i) {
    bytes[12 + i] = static_cast<char>(crc >> (8 * i));
  }
  auto reader = persist::SnapshotReader::Parse(bytes);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(reader.status().message().find("version"), std::string::npos);
}

TEST(ContainerTest, AtomicWriteReplacesAndNeverTears) {
  ScratchDir dir("atomic");
  std::string path = dir.File("file.bin");
  vfs::Vfs& posix = *vfs::Vfs::Posix();
  ASSERT_TRUE(vfs::AtomicWriteFile(posix, path, "first", true).ok());
  EXPECT_EQ(ReadAll(path), "first");
  ASSERT_TRUE(vfs::AtomicWriteFile(posix, path, "second", false).ok());
  EXPECT_EQ(ReadAll(path), "second");
  EXPECT_EQ(*posix.Exists(path + ".tmp"), false);
}

TEST(ContainerTest, AtomicWriteOnMemVfsLeavesNoTempFile) {
  // The same staged-rename protocol runs unchanged on the in-memory VFS:
  // one file after the dust settles, no .tmp stragglers.
  vfs::MemVfs mem;
  ASSERT_TRUE(vfs::AtomicWriteFile(mem, "dir/file.bin", "payload", true).ok());
  EXPECT_EQ(ReadAll("dir/file.bin", &mem), "payload");
  EXPECT_EQ(*mem.Exists("dir/file.bin.tmp"), false);
  EXPECT_EQ(mem.file_count(), 1u);
  ASSERT_TRUE(vfs::AtomicWriteFile(mem, "dir/file.bin", "v2", false).ok());
  EXPECT_EQ(ReadAll("dir/file.bin", &mem), "v2");
  EXPECT_EQ(mem.file_count(), 1u);
}

// ------------------------------------------------- store snapshot parity

const std::string kNineBackends[] = {
    "archive",    "archive-weave",      "incr-diff",
    "cum-diff",   "full-copy",          "extmem",
    "compressed", "checkpoint-archive", "checkpoint-diff",
};

// (backend, vfs kind): every backend's snapshot must round-trip through
// every VFS — buffered posix reads, a zero-copy mmap open, and the pure
// in-memory file system.
class SnapshotRoundTripTest
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {};

TEST_P(SnapshotRoundTripTest, SaveOpenParity) {
  const std::string& backend = std::get<0>(GetParam());
  const std::string& vfs_kind = std::get<1>(GetParam());
  auto live_or = StoreRegistry::Create(backend, OptionsWithSpec());
  ASSERT_TRUE(live_or.ok()) << live_or.status().ToString();
  Store& live = **live_or;

  const auto texts = Versions(/*seed=*/42, 7);
  for (size_t i = 0; i < texts.size(); ++i) {
    ASSERT_TRUE(live.Append(texts[i]).ok()) << backend << " v" << (i + 1);
    if (i == 3 && live.Has(kCheckpoint)) {
      ASSERT_TRUE(live.Checkpoint().ok()) << backend;
    }
  }
  ASSERT_TRUE(live.Has(kPersistence)) << backend;

  ScratchDir dir("roundtrip");
  vfs::MemVfs mem;
  vfs::Vfs* save_vfs = vfs::Vfs::Posix();
  vfs::Vfs* open_vfs = vfs::Vfs::Posix();
  std::string path = dir.File("store.xar");
  if (vfs_kind == "mem") {
    save_vfs = open_vfs = &mem;
    path = "snapshots/store.xar";
    ASSERT_TRUE(mem.CreateDirs("snapshots").ok());
  } else if (vfs_kind == "mmap") {
    open_vfs = vfs::Vfs::Mmap();  // parse straight out of the mapping
  }
  ASSERT_TRUE(live.SaveToFile(path, save_vfs).ok()) << backend;

  auto reopened_or = StoreRegistry::Open(path, {}, open_vfs);
  ASSERT_TRUE(reopened_or.ok()) << backend << ": "
                                << reopened_or.status().ToString();
  Store& reopened = **reopened_or;

  EXPECT_EQ(reopened.name(), live.name()) << backend;
  EXPECT_EQ(reopened.capabilities(), live.capabilities()) << backend;
  ASSERT_EQ(reopened.version_count(), live.version_count()) << backend;

  // Byte-identical retrieval of every version.
  for (Version v = 1; v <= live.version_count(); ++v) {
    auto a = live.Retrieve(v);
    auto b = reopened.Retrieve(v);
    ASSERT_TRUE(a.ok()) << backend << " live v" << v;
    ASSERT_TRUE(b.ok()) << backend << " reopened v" << v
                        << ": " << b.status().ToString();
    EXPECT_EQ(*a, *b) << backend << " v" << v;
  }
  if (live.Has(kStreamingRetrieve)) {
    StringSink a, b;
    ASSERT_TRUE(live.RetrieveTo(2, a).ok()) << backend;
    ASSERT_TRUE(reopened.RetrieveTo(2, b).ok()) << backend;
    EXPECT_EQ(a.data(), b.data()) << backend;
  }

  // Query parity (every backend advertises kQuery).
  {
    StringSink a, b;
    const char* q = "/db/entry[*] @ versions 1..4";
    ASSERT_TRUE(live.Query(q, a).ok()) << backend;
    ASSERT_TRUE(reopened.Query(q, b).ok()) << backend;
    EXPECT_EQ(a.data(), b.data()) << backend;
  }
  if (live.Has(kTemporalQueries)) {
    auto a = live.History({{"db", {}}, {"entry", {{"id", "3"}}}});
    auto b = reopened.History({{"db", {}}, {"entry", {{"id", "3"}}}});
    ASSERT_TRUE(a.ok() && b.ok()) << backend;
    EXPECT_EQ(a->ToString(), b->ToString()) << backend;
    auto da = live.DiffVersions(2, 6);
    auto db = reopened.DiffVersions(2, 6);
    ASSERT_TRUE(da.ok() && db.ok()) << backend;
    ASSERT_EQ(da->size(), db->size()) << backend;
  }

  // Stats parity on the state-derived counters (I/O and merge-pass
  // counters are runtime history, not state, and start fresh on open).
  StoreStats a = live.Stats();
  StoreStats b = reopened.Stats();
  EXPECT_EQ(a.versions, b.versions) << backend;
  EXPECT_EQ(a.stored_bytes, b.stored_bytes) << backend;
  EXPECT_EQ(a.node_count, b.node_count) << backend;
  EXPECT_EQ(a.checkpoint_segments, b.checkpoint_segments) << backend;
  EXPECT_EQ(a.max_retrieval_applications, b.max_retrieval_applications)
      << backend;

  // The reopened store keeps ingesting correctly from where it left off.
  WordsVersions more(/*seed=*/43);
  std::string next = more.Next();
  ASSERT_TRUE(reopened.Append(next).ok()) << backend;
  EXPECT_EQ(reopened.version_count(), live.version_count() + 1) << backend;
  EXPECT_TRUE(reopened.Retrieve(reopened.version_count()).ok()) << backend;
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, SnapshotRoundTripTest,
    ::testing::Combine(::testing::ValuesIn(kNineBackends),
                       ::testing::Values("posix", "mmap", "mem")),
    [](const auto& info) {
      std::string name =
          std::get<0>(info.param) + "_" + std::get<1>(info.param);
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

TEST(SnapshotTest, PendingForcedCheckpointSurvivesTheRoundTrip) {
  auto live_or = StoreRegistry::Create("checkpoint-diff", OptionsWithSpec());
  ASSERT_TRUE(live_or.ok());
  Store& live = **live_or;
  const auto texts = Versions(/*seed=*/5, 3);
  ASSERT_TRUE(live.Append(texts[0]).ok());
  ASSERT_TRUE(live.Append(texts[1]).ok());
  ASSERT_TRUE(live.Checkpoint().ok());  // pending at save time

  ScratchDir dir("pending");
  ASSERT_TRUE(live.SaveToFile(dir.File("s.xar")).ok());
  auto reopened = StoreRegistry::Open(dir.File("s.xar"));
  ASSERT_TRUE(reopened.ok());

  ASSERT_TRUE(live.Append(texts[2]).ok());
  ASSERT_TRUE((*reopened)->Append(texts[2]).ok());
  EXPECT_EQ((*reopened)->Stats().checkpoint_segments,
            live.Stats().checkpoint_segments);
  EXPECT_EQ((*reopened)->Stats().checkpoint_segments, 2u);
}

TEST(SnapshotTest, SnapshotOfEmptyStoreReopensEmpty) {
  for (const std::string& backend : kNineBackends) {
    auto live = StoreRegistry::Create(backend, OptionsWithSpec());
    ASSERT_TRUE(live.ok()) << backend;
    ScratchDir dir("empty");
    ASSERT_TRUE((*live)->SaveToFile(dir.File("s.xar")).ok()) << backend;
    auto reopened = StoreRegistry::Open(dir.File("s.xar"));
    ASSERT_TRUE(reopened.ok()) << backend << ": "
                               << reopened.status().ToString();
    EXPECT_EQ((*reopened)->version_count(), 0u) << backend;
    // And it ingests from empty.
    EXPECT_TRUE((*reopened)->Append(Versions(9, 1)[0]).ok()) << backend;
  }
}

TEST(SnapshotTest, CorruptSnapshotFilesNeverOpen) {
  auto live = StoreRegistry::Create("archive", OptionsWithSpec());
  ASSERT_TRUE(live.ok());
  for (const std::string& text : Versions(/*seed=*/77, 4)) {
    ASSERT_TRUE((*live)->Append(text).ok());
  }
  ScratchDir dir("corrupt");
  const std::string path = dir.File("s.xar");
  ASSERT_TRUE((*live)->SaveToFile(path).ok());
  const std::string good = ReadAll(path);
  ASSERT_TRUE(StoreRegistry::Open(path).ok());

  // Flip one byte at a time across the whole file (stride 1 keeps the
  // suite honest and is still fast at snapshot sizes).
  for (size_t i = 0; i < good.size(); ++i) {
    std::string bad = good;
    bad[i] = static_cast<char>(bad[i] ^ 0x10);
    WriteAll(path, bad);
    auto reopened = StoreRegistry::Open(path);
    EXPECT_FALSE(reopened.ok()) << "flip at byte " << i;
    EXPECT_EQ(reopened.status().code(), StatusCode::kDataLoss)
        << "flip at byte " << i;
  }
  // Truncations at every boundary fail cleanly too.
  for (size_t cut = 0; cut < good.size(); cut += 13) {
    WriteAll(path, good.substr(0, cut));
    EXPECT_FALSE(StoreRegistry::Open(path).ok()) << "cut at " << cut;
  }
}

TEST(SnapshotTest, MissingFileAndUnknownBackendFailCleanly) {
  // The VFS distinguishes a missing file (kNotFound) from a failing disk
  // (kIoError); pre-VFS this surfaced as a generic I/O error.
  EXPECT_EQ(StoreRegistry::Open("/nonexistent/path/s.xar").status().code(),
            StatusCode::kNotFound);
  persist::SnapshotWriter writer;
  writer.Add("backend", "no-such-backend");
  auto opened = StoreRegistry::Global().OpenFromBytes(writer.Serialize());
  EXPECT_EQ(opened.status().code(), StatusCode::kNotFound);
}

// ------------------------------------------------------------ ingest log

TEST(IngestLogTest, AppendReadRoundTrip) {
  vfs::MemVfs mem;
  const std::string path = "ingest.log";
  {
    auto writer = persist::IngestLogWriter::Open(&mem, path,
                                                 persist::FsyncPolicy::kNever);
    ASSERT_TRUE(writer.ok());
    persist::LogRecord a{persist::LogRecord::kAppend, 1, {"<db/>"}};
    persist::LogRecord b{
        persist::LogRecord::kBatch, 2, {"<db>x</db>", "<db>y</db>"}};
    persist::LogRecord c{persist::LogRecord::kCheckpoint, 4, {}};
    ASSERT_TRUE(writer->Append(a).ok());
    ASSERT_TRUE(writer->Append(b).ok());
    ASSERT_TRUE(writer->Append(c).ok());
  }
  auto replay = persist::ReadIngestLog(&mem, path);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_FALSE(replay->torn_tail);
  ASSERT_EQ(replay->records.size(), 3u);
  EXPECT_EQ(replay->records[0].texts[0], "<db/>");
  EXPECT_EQ(replay->records[1].texts.size(), 2u);
  EXPECT_EQ(replay->records[1].first_version, 2u);
  EXPECT_EQ(replay->records[2].type, persist::LogRecord::kCheckpoint);
  EXPECT_EQ(replay->valid_bytes, *mem.FileSize(path));
}

TEST(IngestLogTest, MissingLogIsEmptyAndForeignFileIsRejected) {
  vfs::MemVfs mem;
  auto replay = persist::ReadIngestLog(&mem, "absent.log");
  ASSERT_TRUE(replay.ok());
  EXPECT_TRUE(replay->records.empty());

  WriteAll("foreign.log", "this is not a log file at all", &mem);
  auto foreign = persist::ReadIngestLog(&mem, "foreign.log");
  ASSERT_FALSE(foreign.ok());
  EXPECT_EQ(foreign.status().code(), StatusCode::kDataLoss);
}

TEST(IngestLogTest, TornTailAtEveryByteKeepsIntactRecords) {
  vfs::MemVfs mem;
  const std::string path = "ingest.log";
  size_t size_before_last = 0;
  {
    auto writer = persist::IngestLogWriter::Open(&mem, path,
                                                 persist::FsyncPolicy::kNever);
    ASSERT_TRUE(writer.ok());
    for (int i = 1; i <= 3; ++i) {
      persist::LogRecord rec{persist::LogRecord::kAppend,
                             static_cast<Version>(i),
                             {"<db>version " + std::to_string(i) + "</db>"}};
      ASSERT_TRUE(writer->Append(rec).ok());
    }
  }
  const std::string full = ReadAll(path, &mem);
  // Recompute the offset where the final record begins: re-write the first
  // two records into a scratch log and measure.
  {
    auto writer = persist::IngestLogWriter::Open(&mem, "probe.log",
                                                 persist::FsyncPolicy::kNever);
    ASSERT_TRUE(writer.ok());
    for (int i = 1; i <= 2; ++i) {
      persist::LogRecord rec{persist::LogRecord::kAppend,
                             static_cast<Version>(i),
                             {"<db>version " + std::to_string(i) + "</db>"}};
      ASSERT_TRUE(writer->Append(rec).ok());
    }
    size_before_last = *mem.FileSize("probe.log");
  }
  ASSERT_LT(size_before_last, full.size());

  // Every byte boundary inside the final record: the first two records
  // survive, the torn third is dropped and the truncation point is exact.
  // (A cut exactly at the record boundary is a clean two-record log, not
  // a torn one.)
  for (size_t cut = size_before_last; cut < full.size(); ++cut) {
    WriteAll(path, full.substr(0, cut), &mem);
    auto replay = persist::ReadIngestLog(&mem, path);
    ASSERT_TRUE(replay.ok()) << "cut at " << cut;
    EXPECT_EQ(replay->records.size(), 2u) << "cut at " << cut;
    EXPECT_EQ(replay->torn_tail, cut != size_before_last) << "cut at " << cut;
    EXPECT_EQ(replay->valid_bytes, size_before_last) << "cut at " << cut;
  }
  WriteAll(path, full, &mem);
  auto intact = persist::ReadIngestLog(&mem, path);
  ASSERT_TRUE(intact.ok());
  EXPECT_EQ(intact->records.size(), 3u);
  EXPECT_FALSE(intact->torn_tail);
}

TEST(IngestLogTest, MidLogBitFlipIsRefusedNotTruncated) {
  vfs::MemVfs mem;
  const std::string path = "ingest.log";
  {
    auto writer = persist::IngestLogWriter::Open(&mem, path,
                                                 persist::FsyncPolicy::kNever);
    ASSERT_TRUE(writer.ok());
    for (int i = 1; i <= 3; ++i) {
      persist::LogRecord rec{persist::LogRecord::kAppend,
                             static_cast<Version>(i),
                             {"<db>version " + std::to_string(i) + "</db>"}};
      ASSERT_TRUE(writer->Append(rec).ok());
    }
  }
  std::string bytes = ReadAll(path, &mem);
  // Flip a payload byte of the FIRST record (well before the tail).
  bytes[20] = static_cast<char>(bytes[20] ^ 0x01);
  WriteAll(path, bytes, &mem);
  auto replay = persist::ReadIngestLog(&mem, path);
  // The flip lands in record 1: it reads as a torn tail at record 1 — no
  // intact record is ever dropped silently, and nothing after the bad
  // record is replayed out of order.
  ASSERT_TRUE(replay.ok());
  EXPECT_TRUE(replay->torn_tail);
  EXPECT_TRUE(replay->records.empty());
}

// --------------------------------------------------------- durable stores

/// Every durable-store test runs on a MemVfs: `options.vfs` points the
/// whole snapshot + WAL stack at it, "crash" is dropping the writer, and
/// reopening the same directory name replays whatever "survived".
DurableOptions DurableOpts(vfs::Vfs* vfs,
                           const std::string& backend = "archive") {
  DurableOptions options;
  options.backend = backend;
  options.store = OptionsWithSpec();
  options.fsync = persist::FsyncPolicy::kNever;  // tests: speed over crash-
                                                 // durability of the OS cache
  options.vfs = vfs;
  return options;
}

TEST(DurableStoreTest, SurvivesReopenWithoutSnapshot) {
  vfs::MemVfs mem;
  const auto texts = Versions(/*seed=*/3, 5);
  {
    auto store = OpenDurable("durable1", DurableOpts(&mem));
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    EXPECT_EQ((*store)->name(), "durable(archive)");
    for (const auto& text : texts) ASSERT_TRUE((*store)->Append(text).ok());
    EXPECT_EQ((*store)->version_count(), texts.size());
  }  // process "exit": only the log file persists the data
  auto reopened = OpenDurable("durable1", DurableOpts(&mem));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  ASSERT_EQ((*reopened)->version_count(), texts.size());
  for (Version v = 1; v <= texts.size(); ++v) {
    EXPECT_TRUE((*reopened)->Retrieve(v).ok()) << "v" << v;
  }
}

TEST(DurableStoreTest, SnapshotPlusLogRecovery) {
  vfs::MemVfs mem;
  const auto texts = Versions(/*seed=*/4, 6);
  std::vector<std::string> expected;
  {
    auto store_or = DurableStore::Open("durable2", DurableOpts(&mem));
    ASSERT_TRUE(store_or.ok());
    DurableStore& store = **store_or;
    for (int i = 0; i < 4; ++i) ASSERT_TRUE(store.Append(texts[i]).ok());
    ASSERT_TRUE(store.CompactNow().ok());  // snapshot covers 1..4
    EXPECT_EQ(store.log_records(), 0u);
    for (int i = 4; i < 6; ++i) ASSERT_TRUE(store.Append(texts[i]).ok());
    EXPECT_EQ(store.log_records(), 2u);  // only 5..6 in the log
    for (Version v = 1; v <= 6; ++v) {
      expected.push_back(store.Retrieve(v).value());
    }
  }
  ASSERT_TRUE(*mem.Exists("durable2/snapshot.xar"));
  auto reopened = OpenDurable("durable2", DurableOpts(&mem));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  ASSERT_EQ((*reopened)->version_count(), 6u);
  for (Version v = 1; v <= 6; ++v) {
    EXPECT_EQ((*reopened)->Retrieve(v).value(), expected[v - 1]) << "v" << v;
  }
}

TEST(DurableStoreTest, TornFinalRecordRecoversEveryLoggedVersion) {
  vfs::MemVfs mem;
  const auto texts = Versions(/*seed=*/8, 4);
  {
    auto store = OpenDurable("durable3", DurableOpts(&mem));
    ASSERT_TRUE(store.ok());
    for (const auto& text : texts) ASSERT_TRUE((*store)->Append(text).ok());
  }
  const std::string log_path = "durable3/ingest.log";
  const std::string full = ReadAll(log_path, &mem);
  auto replay = persist::ReadIngestLog(&mem, log_path);
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(replay->records.size(), 4u);
  // Offset where the final record starts = file minus its frame.
  std::string probe;
  {
    persist::LogRecord last = replay->records.back();
    std::string body;
    persist::PutU8(last.type, &body);
    persist::PutU32(last.first_version, &body);
    persist::PutU32(1, &body);
    persist::PutBytes(last.texts[0], &body);
    probe = body;
  }
  const size_t last_frame = probe.size() + 8;
  const size_t last_start = full.size() - last_frame;

  // Simulated torn write at EVERY byte boundary of the final record: the
  // durable store reopens with versions 1..3 intact, none rejected. The
  // directory holds only the log here (no compaction ran), so a "crashed
  // copy" per cut is a fresh directory with the truncated log alone.
  for (size_t cut = last_start; cut < full.size(); ++cut) {
    const std::string copy = "durable3_cut" + std::to_string(cut);
    WriteAll(copy + "/ingest.log", full.substr(0, cut), &mem);
    auto reopened = OpenDurable(copy, DurableOpts(&mem));
    ASSERT_TRUE(reopened.ok()) << "cut at " << cut << ": "
                               << reopened.status().ToString();
    ASSERT_EQ((*reopened)->version_count(), 3u) << "cut at " << cut;
    for (Version v = 1; v <= 3; ++v) {
      auto got = (*reopened)->Retrieve(v);
      ASSERT_TRUE(got.ok()) << "cut at " << cut << " v" << v;
      EXPECT_FALSE(got->empty());
    }
    // The torn tail was truncated away: a subsequent reopen is clean.
    auto again = OpenDurable(copy, DurableOpts(&mem));
    ASSERT_TRUE(again.ok());
    EXPECT_EQ((*again)->version_count(), 3u);
  }
}

TEST(DurableStoreTest, CrashBetweenSnapshotAndTruncateNeverDoubleApplies) {
  vfs::MemVfs mem;
  const auto texts = Versions(/*seed=*/12, 3);
  std::string pre_compact_log;
  {
    auto store = OpenDurable("durable4", DurableOpts(&mem));
    ASSERT_TRUE(store.ok());
    for (const auto& text : texts) ASSERT_TRUE((*store)->Append(text).ok());
    pre_compact_log = ReadAll("durable4/ingest.log", &mem);
  }
  {
    auto store_or = DurableStore::Open("durable4", DurableOpts(&mem));
    ASSERT_TRUE(store_or.ok());
    ASSERT_TRUE((*store_or)->CompactNow().ok());
  }
  // Simulate the crash: snapshot written, log truncation lost.
  WriteAll("durable4/ingest.log", pre_compact_log, &mem);
  auto reopened = OpenDurable("durable4", DurableOpts(&mem));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->version_count(), texts.size());  // not 2x
}

TEST(DurableStoreTest, LogGapIsRefusedNotRenumbered) {
  // A log whose records jump from version 1 to version 3 means an ingest
  // was applied but never logged; replaying would silently renumber the
  // later versions, so recovery must refuse with kDataLoss instead.
  vfs::MemVfs mem;
  const auto texts = Versions(/*seed=*/61, 3);
  {
    auto writer = persist::IngestLogWriter::Open(
        &mem, "durable_gap/ingest.log", persist::FsyncPolicy::kNever);
    ASSERT_TRUE(writer.ok());
    persist::LogRecord first{persist::LogRecord::kAppend, 1, {texts[0]}};
    persist::LogRecord third{persist::LogRecord::kAppend, 3, {texts[2]}};
    ASSERT_TRUE(writer->Append(first).ok());
    ASSERT_TRUE(writer->Append(third).ok());
  }
  auto reopened = OpenDurable("durable_gap", DurableOpts(&mem));
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(reopened.status().message().find("gap"), std::string::npos);
}

TEST(DurableStoreTest, AutoSnapshotEveryNRecords) {
  vfs::MemVfs mem;
  DurableOptions options = DurableOpts(&mem);
  options.snapshot_every_records = 2;
  auto store_or = DurableStore::Open("durable5", std::move(options));
  ASSERT_TRUE(store_or.ok());
  DurableStore& store = **store_or;
  const auto texts = Versions(/*seed=*/21, 5);
  for (const auto& text : texts) ASSERT_TRUE(store.Append(text).ok());
  // 5 appends with a snapshot every 2: the log holds at most 1 record.
  EXPECT_LE(store.log_records(), 1u);
  EXPECT_TRUE(*mem.Exists("durable5/snapshot.xar"));
}

TEST(DurableStoreTest, BatchIngestIsLoggedAtomically) {
  vfs::MemVfs mem;
  const auto texts = Versions(/*seed=*/31, 4);
  {
    auto store = OpenDurable("durable6", DurableOpts(&mem));
    ASSERT_TRUE(store.ok());
    std::vector<std::string_view> views(texts.begin(), texts.end());
    ASSERT_TRUE((*store)->AppendBatch(views).ok());
  }
  auto reopened = OpenDurable("durable6", DurableOpts(&mem));
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->version_count(), texts.size());
}

TEST(DurableStoreTest, BackendMismatchIsRejected) {
  vfs::MemVfs mem;
  {
    auto store_or = DurableStore::Open("durable7", DurableOpts(&mem));
    ASSERT_TRUE(store_or.ok());
    ASSERT_TRUE((*store_or)->Append(Versions(2, 1)[0]).ok());
    ASSERT_TRUE((*store_or)->CompactNow().ok());
  }
  auto wrong = OpenDurable("durable7", DurableOpts(&mem, "full-copy"));
  ASSERT_FALSE(wrong.ok());
  EXPECT_EQ(wrong.status().code(), StatusCode::kInvalidArgument);
}

TEST(DurableStoreTest, WrapsNonArchiveBackends) {
  vfs::MemVfs mem;
  const auto texts = Versions(/*seed=*/51, 4);
  {
    auto store = OpenDurable("durable8", DurableOpts(&mem, "checkpoint-diff"));
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    ASSERT_TRUE((*store)->Append(texts[0]).ok());
    ASSERT_TRUE((*store)->Append(texts[1]).ok());
    ASSERT_TRUE((*store)->Checkpoint().ok());  // compacts + inner boundary
    ASSERT_TRUE((*store)->Append(texts[2]).ok());
  }
  auto reopened =
      OpenDurable("durable8", DurableOpts(&mem, "checkpoint-diff"));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->version_count(), 3u);
  EXPECT_GE((*reopened)->Stats().checkpoint_segments, 2u);
}

// ------------------------------------------- capability honesty (persist)

TEST(PersistCapabilityTest, UnadvertisedSaveIsUnimplemented) {
  // A minimal out-of-tree backend that does not advertise kPersistence.
  class NoPersistStore final : public Store {
   public:
    std::string name() const override { return "no-persist"; }
    Capabilities capabilities() const override { return 0; }

   protected:
    Status AppendImpl(std::string_view) override { return Status::OK(); }
    StatusOr<std::string> RetrieveImpl(Version) override {
      return std::string();
    }
    Version VersionCountImpl() const override { return 0; }
    std::string StoredBytesImpl() const override { return ""; }
    StoreStats BackendStats() const override { return {}; }
  };
  NoPersistStore store;
  EXPECT_EQ(store.SaveToBytes().status().code(), StatusCode::kUnimplemented);
  EXPECT_EQ(store.SaveToFile("/tmp/never-written.xar").code(),
            StatusCode::kUnimplemented);
}

}  // namespace
}  // namespace xarch
