// Observability layer: histogram bucket boundaries and quantile-bound
// guarantees against exact sorted data, concurrent-increment exactness,
// merge associativity, the Prometheus text encoder, trace nesting and
// ordering, the structured logger, and EXPLAIN ANALYZE's probe-count
// parity with plain EXPLAIN.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/parser.h"
#include "xarch/sink.h"
#include "xarch/store.h"
#include "xarch/store_registry.h"

namespace xarch {
namespace {

using obs::Histogram;
using obs::Registry;
using obs::Trace;

// --------------------------------------------------------------- buckets

TEST(HistogramBucketTest, SmallValuesGetExactBuckets) {
  for (uint64_t v = 0; v < 2 * Histogram::kSubBuckets; ++v) {
    const size_t b = Histogram::BucketIndex(v);
    EXPECT_EQ(Histogram::BucketLowerBound(b), v);
    EXPECT_EQ(Histogram::BucketUpperBound(b), v);
  }
}

TEST(HistogramBucketTest, EveryValueFallsInsideItsBucketBounds) {
  std::vector<uint64_t> probes;
  for (int bit = 0; bit < 64; ++bit) {
    const uint64_t p = uint64_t{1} << bit;
    probes.push_back(p);
    probes.push_back(p - 1);
    probes.push_back(p + 1);
    probes.push_back(p + p / 3);
  }
  probes.push_back(UINT64_MAX);
  probes.push_back(UINT64_MAX - 1);
  for (uint64_t v : probes) {
    const size_t b = Histogram::BucketIndex(v);
    ASSERT_LT(b, Histogram::kBucketCount) << v;
    EXPECT_LE(Histogram::BucketLowerBound(b), v) << v;
    EXPECT_GE(Histogram::BucketUpperBound(b), v) << v;
  }
}

TEST(HistogramBucketTest, BucketsAreContiguousAndOrdered) {
  // Walk the first 40 octaves of buckets: each bucket starts exactly one
  // past the previous bucket's end — no gaps, no overlaps.
  const size_t limit = Histogram::BucketIndex(uint64_t{1} << 40);
  for (size_t b = 1; b <= limit; ++b) {
    EXPECT_EQ(Histogram::BucketLowerBound(b),
              Histogram::BucketUpperBound(b - 1) + 1)
        << "bucket " << b;
  }
}

TEST(HistogramBucketTest, RelativeWidthIsAtMostOneSixteenth) {
  for (uint64_t v : {100u, 1000u, 65537u, 1u << 20, 1u << 30}) {
    const size_t b = Histogram::BucketIndex(v);
    const uint64_t lo = Histogram::BucketLowerBound(b);
    const uint64_t hi = Histogram::BucketUpperBound(b);
    // Width (hi - lo + 1) is at most lo/16: the quantile bound is within
    // 6.25% of the true sample.
    EXPECT_LE(hi - lo + 1, lo / 16 + 1) << v;
  }
}

// ------------------------------------------------------------- quantiles

TEST(HistogramQuantileTest, BoundsBracketExactSortedData) {
  // A skewed latency-like distribution with exact duplicates.
  std::vector<uint64_t> data;
  for (uint64_t i = 0; i < 500; ++i) data.push_back(i % 40);        // fast
  for (uint64_t i = 0; i < 90; ++i) data.push_back(1000 + 17 * i);  // slow
  for (uint64_t i = 0; i < 10; ++i) data.push_back(250000 + i);     // tail

  Histogram h;
  for (uint64_t v : data) h.Record(v);
  std::sort(data.begin(), data.end());

  for (double q : {0.0, 0.10, 0.50, 0.90, 0.99, 1.0}) {
    // The histogram promises its bucket bounds bracket the sample at the
    // same rank the old sorted-ring percentile used.
    const size_t rank = static_cast<size_t>(
        q * static_cast<double>(data.size() - 1) + 0.5);
    const uint64_t exact = data[std::min(rank, data.size() - 1)];
    EXPECT_LE(h.QuantileLowerBound(q), exact) << "q=" << q;
    EXPECT_GE(h.QuantileUpperBound(q), exact) << "q=" << q;
  }
}

TEST(HistogramQuantileTest, EmptyHistogramReportsZero) {
  Histogram h;
  EXPECT_EQ(h.QuantileUpperBound(0.5), 0u);
  EXPECT_EQ(h.QuantileLowerBound(0.99), 0u);
  EXPECT_EQ(h.count(), 0u);
}

// ----------------------------------------------------------- concurrency

TEST(ObsConcurrencyTest, ConcurrentIncrementsAreExact) {
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  Registry registry;
  obs::Counter* counter = registry.GetCounter("c");
  obs::Histogram* histogram = registry.GetHistogram("h");
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        counter->Add(1);
        histogram->Record(static_cast<uint64_t>(t) * 1000 + (i % 97));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter->value(), kThreads * kPerThread);
  EXPECT_EQ(histogram->count(), kThreads * kPerThread);
  // Bucketwise counts are independent atomics: no recorded sample may be
  // lost, so the buckets sum to the count too.
  uint64_t bucket_total = 0;
  for (const auto& b : histogram->NonEmptyBuckets()) bucket_total += b.count;
  EXPECT_EQ(bucket_total, kThreads * kPerThread);
}

TEST(HistogramMergeTest, MergeIsAssociative) {
  auto fill = [](Histogram* h, uint64_t seed) {
    for (uint64_t i = 0; i < 100; ++i) h->Record(seed * 37 + i * i);
  };
  auto snapshot = [](const Histogram& h) {
    std::vector<std::pair<size_t, uint64_t>> out;
    for (const auto& b : h.NonEmptyBuckets()) out.emplace_back(b.index,
                                                               b.count);
    return out;
  };
  // (a + b) + c
  Histogram left_a, left_b, left_c;
  fill(&left_a, 1); fill(&left_b, 2); fill(&left_c, 3);
  left_a.Merge(left_b);
  left_a.Merge(left_c);
  // a + (b + c)
  Histogram right_a, right_b, right_c;
  fill(&right_a, 1); fill(&right_b, 2); fill(&right_c, 3);
  right_b.Merge(right_c);
  right_a.Merge(right_b);

  EXPECT_EQ(snapshot(left_a), snapshot(right_a));
  EXPECT_EQ(left_a.count(), right_a.count());
  EXPECT_EQ(left_a.sum(), right_a.sum());
}

// ------------------------------------------------------------- registry

TEST(RegistryTest, SameNameAndLabelsShareOneInstrument) {
  Registry registry;
  obs::Counter* a = registry.GetCounter("x_total", "k=\"1\"");
  obs::Counter* b = registry.GetCounter("x_total", "k=\"1\"");
  obs::Counter* c = registry.GetCounter("x_total", "k=\"2\"");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  a->Add(2);
  b->Add(3);
  EXPECT_EQ(a->value(), 5u);
  EXPECT_EQ(c->value(), 0u);
}

TEST(RegistryTest, EncodeTextEmitsPrometheusExposition) {
  Registry registry;
  registry.GetCounter("xarch_widgets_total", "kind=\"a\"", "Widgets made")
      ->Add(4);
  registry.GetCounter("xarch_widgets_total", "kind=\"b\"")->Add(2);
  registry.GetGauge("xarch_live", "", "Live things")->Set(7);
  obs::Histogram* h = registry.GetHistogram("xarch_lat_us", "", "Latency");
  h->Record(3);
  h->Record(3);
  h->Record(100);

  const std::string text = registry.EncodeText();
  EXPECT_NE(text.find("# HELP xarch_widgets_total Widgets made\n"),
            std::string::npos) << text;
  EXPECT_NE(text.find("# TYPE xarch_widgets_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("xarch_widgets_total{kind=\"a\"} 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("xarch_widgets_total{kind=\"b\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE xarch_live gauge\n"), std::string::npos);
  EXPECT_NE(text.find("xarch_live 7\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE xarch_lat_us histogram\n"), std::string::npos);
  // Cumulative buckets: le="3" holds both 3s; +Inf holds everything.
  EXPECT_NE(text.find("xarch_lat_us_bucket{le=\"3\"} 2\n"),
            std::string::npos) << text;
  EXPECT_NE(text.find("xarch_lat_us_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("xarch_lat_us_sum 106\n"), std::string::npos);
  EXPECT_NE(text.find("xarch_lat_us_count 3\n"), std::string::npos);
}

TEST(RegistryTest, KillSwitchStopsHotPathMutation) {
  Registry registry;
  obs::Counter* counter = registry.GetCounter("kc");
  obs::Histogram* histogram = registry.GetHistogram("kh");
  obs::SetMetricsEnabled(false);
  counter->Add(5);
  histogram->Record(42);
  obs::SetMetricsEnabled(true);
  EXPECT_EQ(counter->value(), 0u);
  EXPECT_EQ(histogram->count(), 0u);
  counter->Add(5);
  EXPECT_EQ(counter->value(), 5u);
}

// ----------------------------------------------------------------- trace

TEST(TraceTest, RendersNestedSpansInCreationOrder) {
  Trace trace;
  const Trace::SpanId root = trace.Begin("eval", Trace::kNoSpan);
  const Trace::SpanId child = trace.Begin("scan v1", root);
  trace.Note(child, "matches", 3);
  trace.End(child);
  const Trace::SpanId second = trace.Begin("scan v2", root);
  trace.End(second);
  trace.End(root);
  EXPECT_EQ(trace.span_count(), 3u);

  const std::string text = trace.Render();
  const size_t p_root = text.find("  eval");
  const size_t p_child = text.find("    scan v1");
  const size_t p_second = text.find("    scan v2");
  ASSERT_NE(p_root, std::string::npos) << text;
  ASSERT_NE(p_child, std::string::npos) << text;
  ASSERT_NE(p_second, std::string::npos) << text;
  // Children indent one level deeper and render after their parent, in
  // creation order.
  EXPECT_LT(p_root, p_child);
  EXPECT_LT(p_child, p_second);
  EXPECT_NE(text.find("[matches=3]"), std::string::npos) << text;
}

TEST(TraceTest, AddCompletedRecordsExternallyTimedSpans) {
  Trace trace;
  const Trace::SpanId parse =
      trace.AddCompleted("parse", Trace::kNoSpan, 100, 350);
  EXPECT_EQ(parse, 0u);
  const std::string text = trace.Render();
  EXPECT_NE(text.find("parse"), std::string::npos);
  EXPECT_NE(text.find("250 us"), std::string::npos) << text;
}

TEST(TraceTest, ScopedSpanIsNullSafe) {
  obs::ScopedSpan span(nullptr, "nothing");
  span.Note("ignored", 1);
  EXPECT_EQ(span.id(), Trace::kNoSpan);
}

// ---------------------------------------------------------------- logger

TEST(LoggerTest, FormatsSingleLineKeyValueRecords) {
  const std::string line = obs::Logger::Format(
      "serving", {{"port", 4711}, {"backend", "durable(archive)"},
                  {"note", "has spaces"}});
  EXPECT_EQ(line.find('\n'), std::string::npos);
  EXPECT_NE(line.find("ts="), std::string::npos) << line;
  EXPECT_NE(line.find("mono_us="), std::string::npos);
  EXPECT_NE(line.find("event=serving"), std::string::npos);
  EXPECT_NE(line.find("port=4711"), std::string::npos);
  EXPECT_NE(line.find("backend=durable(archive)"), std::string::npos);
  // Values with spaces are quoted so the line splits on spaces.
  EXPECT_NE(line.find("note=\"has spaces\""), std::string::npos) << line;
}

// ------------------------------------------------- explain analyze parity

constexpr const char* kKeys = R"(
(/, (db, {}))
(/db, (entry, {id}))
(/db/entry, (note, {}))
)";

std::unique_ptr<Store> MakeArchiveStore() {
  auto spec = keys::ParseKeySpecSet(kKeys);
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  StoreOptions options;
  options.spec = std::move(*spec);
  options.use_index = true;
  auto store = StoreRegistry::Create("archive", std::move(options));
  EXPECT_TRUE(store.ok()) << store.status().ToString();
  const std::vector<std::string> versions = {
      "<db><entry><id>1</id><note>alpha</note></entry></db>",
      "<db><entry><id>1</id><note>beta</note></entry>"
      "<entry><id>2</id><note>gamma</note></entry></db>",
      "<db><entry><id>2</id><note>gamma2</note></entry></db>",
  };
  for (const std::string& v : versions) {
    EXPECT_TRUE((*store)->Append(v).ok());
  }
  return std::move(store).value();
}

std::string MustQuery(Store& store, const std::string& q) {
  StringSink sink;
  Status st = store.Query(q, sink);
  EXPECT_TRUE(st.ok()) << q << ": " << st.ToString();
  return std::move(sink).Take();
}

/// Pulls the number after `label` out of an EXPLAIN report.
uint64_t StatLine(const std::string& report, const std::string& label) {
  const size_t at = report.find(label);
  EXPECT_NE(at, std::string::npos) << label << " missing in:\n" << report;
  if (at == std::string::npos) return 0;
  return std::strtoull(report.c_str() + at + label.size(), nullptr, 10);
}

TEST(ExplainAnalyzeTest, AppendsSpanTreeAndKeepsProbeCountsEqual) {
  auto store = MakeArchiveStore();
  const std::string plain =
      MustQuery(*store, "explain /db/entry[id=\"2\"] @ versions 1..3");
  const std::string analyzed =
      MustQuery(*store, "explain analyze /db/entry[id=\"2\"] @ versions 1..3");

  // The span tree is the analyze report's tail — and only its.
  EXPECT_EQ(plain.find("trace:"), std::string::npos) << plain;
  ASSERT_NE(analyzed.find("trace:"), std::string::npos) << analyzed;
  EXPECT_NE(analyzed.find("parse"), std::string::npos);
  EXPECT_NE(analyzed.find("plan"), std::string::npos);
  EXPECT_NE(analyzed.find("eval"), std::string::npos);
  EXPECT_NE(analyzed.find("scan v"), std::string::npos) << analyzed;

  // The acceptance gate: tracing must not change what the query does.
  // EXPLAIN ANALYZE runs serially (the traced evaluator skips the
  // parallel executor) but probe totals are identical either way.
  for (const char* label :
       {"matches:", "tree probes:", "naive probes:", "key comparisons:",
        "bytes streamed:"}) {
    EXPECT_EQ(StatLine(plain, label), StatLine(analyzed, label)) << label;
  }
}

TEST(ExplainAnalyzeTest, RoundTripsThroughParser) {
  auto ast = query::Parse("explain analyze /db @ version 1");
  ASSERT_TRUE(ast.ok()) << ast.status().ToString();
  EXPECT_TRUE(ast->explain);
  EXPECT_TRUE(ast->analyze);
  EXPECT_EQ(ast->ToString(), "explain analyze /db @ version 1");
  auto again = query::Parse(ast->ToString());
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(*ast == *again);
}

TEST(ExplainAnalyzeTest, CallerTraceSeesSpansWithoutAnalyze) {
  // The Store::Query trace parameter works for plain queries too: the
  // server threads one through for slow-query logging and wire traces.
  auto store = MakeArchiveStore();
  Trace trace;
  StringSink sink;
  ASSERT_TRUE(store->Query("/db @ version 2", sink, &trace).ok());
  EXPECT_GT(trace.span_count(), 0u);
  const std::string text = trace.Render();
  EXPECT_NE(text.find("parse"), std::string::npos) << text;
  EXPECT_NE(text.find("eval"), std::string::npos) << text;
  // The result itself is unchanged by tracing.
  StringSink untraced;
  ASSERT_TRUE(store->Query("/db @ version 2", untraced).ok());
  EXPECT_EQ(sink.data(), untraced.data());
}

}  // namespace
}  // namespace xarch
