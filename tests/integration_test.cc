// Cross-module integration tests: the full pipeline (generators -> keys ->
// nested merge -> serialization -> compression -> retrieval) and the
// Store v2 façade, exercised end to end.

#include <gtest/gtest.h>

#include <algorithm>

#include "compress/container.h"
#include "compress/lzss.h"
#include "synth/omim.h"
#include "synth/swissprot.h"
#include "synth/xmark.h"
#include "xarch/xarch.h"

namespace xarch {
namespace {

keys::KeySpecSet MustSpec(const char* text) {
  auto spec = keys::ParseKeySpecSet(text);
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  return std::move(spec).value();
}

std::string SerializeFlat(const xml::Node& node) {
  xml::SerializeOptions options;
  options.indent_width = 0;
  return xml::Serialize(node, options);
}

std::unique_ptr<Store> MustStore(const char* backend, const char* spec_text) {
  StoreOptions options;
  options.spec = MustSpec(spec_text);
  auto store = StoreRegistry::Create(backend, std::move(options));
  EXPECT_TRUE(store.ok()) << backend << ": " << store.status().ToString();
  return std::move(store).value();
}

// Every Store backend must reproduce every version byte-for-byte after a
// normalizing re-parse (keyed-sibling order is free for the archive).
class VersionStoreTest : public ::testing::TestWithParam<const char*> {};

TEST_P(VersionStoreTest, AllStoresReproduceAllVersions) {
  synth::OmimGenerator::Options gen_options;
  gen_options.initial_records = 25;
  gen_options.insert_ratio = 0.05;
  gen_options.delete_ratio = 0.02;
  gen_options.modify_ratio = 0.04;
  synth::OmimGenerator gen(gen_options);

  std::unique_ptr<Store> store =
      MustStore(GetParam(), synth::OmimGenerator::KeySpecText());
  std::vector<std::string> texts;
  for (int v = 0; v < 8; ++v) {
    texts.push_back(SerializeFlat(*gen.NextVersion()));
    Status st = store->Append(texts.back());
    ASSERT_TRUE(st.ok()) << store->name() << ": " << st.ToString();
  }
  EXPECT_GT(store->ByteSize(), 0u);
  for (Version v = 1; v <= texts.size(); ++v) {
    auto got = store->Retrieve(v);
    ASSERT_TRUE(got.ok()) << store->name() << " v" << v << ": "
                          << got.status().ToString();
    // Normalize both sides through a single-version archive.
    core::Archive a(MustSpec(synth::OmimGenerator::KeySpecText()));
    core::Archive b(MustSpec(synth::OmimGenerator::KeySpecText()));
    auto da = xml::Parse(*got);
    auto db = xml::Parse(texts[v - 1]);
    ASSERT_TRUE(da.ok() && db.ok());
    ASSERT_TRUE(a.AddVersion(**da).ok());
    ASSERT_TRUE(b.AddVersion(**db).ok());
    EXPECT_EQ(a.ToXml(), b.ToXml()) << store->name() << " version " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(AllStores, VersionStoreTest,
                         ::testing::Values("archive", "archive-weave",
                                           "incr-diff", "cum-diff",
                                           "full-copy"),
                         [](const auto& info) {
                           std::string name = info.param;
                           std::replace(name.begin(), name.end(), '-', '_');
                           return name;
                         });

TEST(PipelineTest, ArchiveCompressRoundTrip) {
  // archive -> XML -> container-compress -> decompress -> reload -> query.
  synth::SwissProtGenerator::Options gen_options;
  gen_options.initial_records = 15;
  synth::SwissProtGenerator gen(gen_options);
  core::Archive archive(MustSpec(synth::SwissProtGenerator::KeySpecText()));
  for (int v = 0; v < 4; ++v) {
    ASSERT_TRUE(archive.AddVersion(*gen.NextVersion()).ok());
  }
  std::string xml = archive.ToXml();
  auto blob = compress::XmlContainerCompressor::CompressText(xml);
  ASSERT_TRUE(blob.ok());
  auto doc = compress::XmlContainerCompressor::Decompress(*blob);
  ASSERT_TRUE(doc.ok());
  std::string xml_again = xml::Serialize(**doc);
  auto loaded = core::Archive::FromXml(
      xml_again, MustSpec(synth::SwissProtGenerator::KeySpecText()));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->version_count(), 4u);
  EXPECT_TRUE(loaded->Check().ok());
  for (Version v = 1; v <= 4; ++v) {
    auto a = archive.RetrieveVersion(v);
    auto b = loaded->RetrieveVersion(v);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_TRUE(xml::ValueEqual(**a, **b)) << "version " << v;
  }
}

TEST(PipelineTest, CompressedArchiveBeatsCompressedDiffsOnAccretiveData) {
  // The paper's central compression claim, end to end on OMIM-like data.
  synth::OmimGenerator::Options gen_options;
  gen_options.initial_records = 60;
  gen_options.insert_ratio = 0.02;
  gen_options.modify_ratio = 0.01;
  synth::OmimGenerator gen(gen_options);
  auto archive = MustStore("archive", synth::OmimGenerator::KeySpecText());
  auto inc = MustStore("incr-diff", synth::OmimGenerator::KeySpecText());
  for (int v = 0; v < 12; ++v) {
    std::string text = SerializeFlat(*gen.NextVersion());
    ASSERT_TRUE(archive->Append(text).ok());
    ASSERT_TRUE(inc->Append(text).ok());
  }
  auto xmill_archive =
      compress::XmlContainerCompressor::CompressText(archive->StoredBytes());
  ASSERT_TRUE(xmill_archive.ok());
  size_t gzip_inc = compress::LzssCompress(inc->StoredBytes()).size();
  EXPECT_LT(xmill_archive->size(), gzip_inc);
}

TEST(PipelineTest, WorstCaseArchiveLargerButRetrievable) {
  synth::XMarkGenerator::Options gen_options;
  gen_options.items = 8;
  gen_options.people = 12;
  gen_options.open_auctions = 8;
  synth::XMarkGenerator gen(gen_options);
  auto archive = MustStore("archive", synth::XMarkGenerator::KeySpecText());
  auto inc = MustStore("incr-diff", synth::XMarkGenerator::KeySpecText());
  for (int v = 0; v < 6; ++v) {
    if (v > 0) gen.MutateKeys(15.0);
    std::string text = SerializeFlat(*gen.Current());
    ASSERT_TRUE(archive->Append(text).ok());
    ASSERT_TRUE(inc->Append(text).ok());
  }
  // Key mutation is the archiver's worst case (Fig. 14).
  EXPECT_GT(archive->ByteSize(), inc->ByteSize());
  for (Version v = 1; v <= 6; ++v) {
    EXPECT_TRUE(archive->Retrieve(v).ok());
  }
}

TEST(PipelineTest, HistoryAcrossRecordLifecycles) {
  // A record deleted and re-added keeps one identity and a gap timestamp.
  auto spec_text = synth::OmimGenerator::KeySpecText();
  core::Archive archive(MustSpec(spec_text));
  auto make_doc = [](bool with_second) {
    xml::NodePtr root = xml::Node::Element("ROOT");
    auto add_record = [&](const std::string& num) {
      xml::Node* rec = root->AddElement("Record");
      rec->AddElementWithText("Num", num);
      rec->AddElementWithText("Title", "T" + num);
    };
    add_record("1000");
    if (with_second) add_record("2000");
    return root;
  };
  ASSERT_TRUE(archive.AddVersion(*make_doc(true)).ok());
  ASSERT_TRUE(archive.AddVersion(*make_doc(false)).ok());
  ASSERT_TRUE(archive.AddVersion(*make_doc(true)).ok());
  auto history =
      archive.History({{"ROOT", {}}, {"Record", {{"Num", "2000"}}}});
  ASSERT_TRUE(history.ok());
  EXPECT_EQ(history->ToString(), "1,3");
  // Stored once: the archive XML mentions Num 2000 exactly once.
  std::string xml = archive.ToXml();
  size_t first = xml.find("<Num>2000</Num>");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(xml.find("<Num>2000</Num>", first + 1), std::string::npos);
}

}  // namespace
}  // namespace xarch
