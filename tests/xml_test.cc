#include <gtest/gtest.h>

#include "xml/canonical.h"
#include "xml/node.h"
#include "xml/parser.h"
#include "xml/path.h"
#include "xml/serializer.h"
#include "xml/value.h"

namespace xarch::xml {
namespace {

NodePtr MustParse(std::string_view text) {
  auto result = Parse(text);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

// ---------------------------------------------------------------- Node

TEST(NodeTest, ElementBasics) {
  NodePtr e = Node::Element("db");
  EXPECT_TRUE(e->is_element());
  EXPECT_EQ(e->tag(), "db");
  EXPECT_TRUE(e->children().empty());
}

TEST(NodeTest, AttrsSortedAndReplaceable) {
  NodePtr e = Node::Element("x");
  e->SetAttr("b", "2");
  e->SetAttr("a", "1");
  e->SetAttr("c", "3");
  ASSERT_EQ(e->attrs().size(), 3u);
  EXPECT_EQ(e->attrs()[0].first, "a");
  EXPECT_EQ(e->attrs()[1].first, "b");
  EXPECT_EQ(e->attrs()[2].first, "c");
  e->SetAttr("b", "22");
  ASSERT_EQ(e->attrs().size(), 3u);
  EXPECT_EQ(*e->FindAttr("b"), "22");
  EXPECT_EQ(e->FindAttr("zz"), nullptr);
}

TEST(NodeTest, BuildAndFind) {
  NodePtr db = Node::Element("db");
  Node* dept = db->AddElement("dept");
  dept->AddElementWithText("name", "finance");
  dept->AddElementWithText("name", "hr");
  EXPECT_EQ(db->FindChild("dept"), dept);
  EXPECT_EQ(db->FindChild("none"), nullptr);
  EXPECT_EQ(dept->FindChildren("name").size(), 2u);
  EXPECT_EQ(dept->TextContent(), "financehr");
}

TEST(NodeTest, CloneIsDeepAndEqual) {
  NodePtr doc = MustParse("<a x='1'><b>t1</b><c><d/>text</c></a>");
  NodePtr copy = doc->Clone();
  EXPECT_TRUE(ValueEqual(*doc, *copy));
  copy->FindChild("b")->mutable_children()[0]->set_text("t2");
  EXPECT_FALSE(ValueEqual(*doc, *copy));
}

TEST(NodeTest, CountNodesIncludesAttrs) {
  NodePtr doc = MustParse("<a x='1' y='2'><b/>text</a>");
  // a, x, y, b, text = 5
  EXPECT_EQ(doc->CountNodes(), 5u);
}

TEST(NodeTest, Height) {
  NodePtr doc = MustParse("<a><b><c>t</c></b><d/></a>");
  EXPECT_EQ(doc->Height(), 3);  // a -> b -> c (element levels only)
}

// ---------------------------------------------------------------- Parser

TEST(ParserTest, SimpleElement) {
  NodePtr doc = MustParse("<gene><id>6230</id><name>GRTM</name></gene>");
  EXPECT_EQ(doc->tag(), "gene");
  ASSERT_EQ(doc->children().size(), 2u);
  EXPECT_EQ(doc->children()[0]->tag(), "id");
  EXPECT_EQ(doc->children()[0]->TextContent(), "6230");
}

TEST(ParserTest, AttributesBothQuotes) {
  NodePtr doc = MustParse("<item id=\"item1\" cat='c48'/>");
  EXPECT_EQ(*doc->FindAttr("id"), "item1");
  EXPECT_EQ(*doc->FindAttr("cat"), "c48");
}

TEST(ParserTest, WhitespaceTextSkippedByDefault) {
  NodePtr doc = MustParse("<a>\n  <b>x</b>\n  <c>y</c>\n</a>");
  ASSERT_EQ(doc->children().size(), 2u);
  EXPECT_TRUE(doc->children()[0]->is_element());
}

TEST(ParserTest, WhitespaceKeptWhenRequested) {
  ParseOptions opts;
  opts.skip_whitespace_text = false;
  auto result = Parse("<a> <b/> </a>", opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value()->children().size(), 3u);
}

TEST(ParserTest, Entities) {
  NodePtr doc = MustParse("<t a='&quot;q&apos;'>x &lt;tag&gt; &amp; &#65;&#x42;</t>");
  EXPECT_EQ(doc->TextContent(), "x <tag> & AB");
  EXPECT_EQ(*doc->FindAttr("a"), "\"q'");
}

TEST(ParserTest, CommentsAndPIsSkipped) {
  NodePtr doc = MustParse(
      "<?xml version=\"1.0\"?><!-- hi --><a><!-- in -->x<?pi data?></a>");
  EXPECT_EQ(doc->TextContent(), "x");
}

TEST(ParserTest, Doctype) {
  NodePtr doc = MustParse("<!DOCTYPE db [ <!ELEMENT a (b)> ]><a><b/></a>");
  EXPECT_EQ(doc->tag(), "a");
}

TEST(ParserTest, Cdata) {
  NodePtr doc = MustParse("<a><![CDATA[<raw> & stuff]]></a>");
  EXPECT_EQ(doc->TextContent(), "<raw> & stuff");
}

TEST(ParserTest, SelfClosing) {
  NodePtr doc = MustParse("<a><b/><c x='1'/></a>");
  EXPECT_EQ(doc->children().size(), 2u);
  EXPECT_TRUE(doc->children()[0]->children().empty());
}

TEST(ParserTest, MismatchedTagFails) {
  EXPECT_FALSE(Parse("<a><b></a></b>").ok());
}

TEST(ParserTest, UnterminatedFails) {
  EXPECT_FALSE(Parse("<a><b>").ok());
  EXPECT_FALSE(Parse("<a attr='x").ok());
  EXPECT_FALSE(Parse("").ok());
}

TEST(ParserTest, TrailingGarbageFails) {
  EXPECT_FALSE(Parse("<a/><b/>").ok());
  EXPECT_FALSE(Parse("<a/>junk").ok());
}

TEST(ParserTest, NamespacePrefixesKeptVerbatim) {
  NodePtr doc = MustParse("<v:T t='1-4'><db/></v:T>");
  EXPECT_EQ(doc->tag(), "v:T");
  EXPECT_EQ(*doc->FindAttr("t"), "1-4");
}

// ------------------------------------------------------------- Serializer

TEST(SerializerTest, RoundTripPretty) {
  NodePtr doc = MustParse(
      "<db><dept><name>finance</name><emp><fn>John</fn><ln>Doe</ln>"
      "<sal>95K</sal></emp></dept></db>");
  std::string text = Serialize(*doc);
  NodePtr again = MustParse(text);
  EXPECT_TRUE(ValueEqual(*doc, *again));
}

TEST(SerializerTest, RoundTripCompact) {
  NodePtr doc = MustParse("<a x='1'><b>hi &amp; low</b><c/></a>");
  SerializeOptions opts;
  opts.pretty = false;
  std::string text = Serialize(*doc, opts);
  EXPECT_EQ(text, "<a x=\"1\"><b>hi &amp; low</b><c/></a>");
  NodePtr again = MustParse(text);
  EXPECT_TRUE(ValueEqual(*doc, *again));
}

TEST(SerializerTest, TextOnlyElementsAreSingleLine) {
  NodePtr doc = MustParse("<a><b>x</b></a>");
  std::string text = Serialize(*doc);
  EXPECT_NE(text.find("<b>x</b>"), std::string::npos);
}

TEST(SerializerTest, EscapesSpecialChars) {
  NodePtr e = Node::Element("t");
  e->AddText("a<b&c>d");
  e->SetAttr("q", "say \"hi\"");
  SerializeOptions opts;
  opts.pretty = false;
  std::string text = Serialize(*e, opts);
  EXPECT_EQ(text, "<t q=\"say &quot;hi&quot;\">a&lt;b&amp;c&gt;d</t>");
}

// ------------------------------------------------------------- ValueEqual

TEST(ValueTest, EqualityIgnoresAttrOrder) {
  NodePtr a = MustParse("<x b='2' a='1'/>");
  NodePtr b = MustParse("<x a='1' b='2'/>");
  EXPECT_TRUE(ValueEqual(*a, *b));
}

TEST(ValueTest, ChildOrderMatters) {
  NodePtr a = MustParse("<x><a/><b/></x>");
  NodePtr b = MustParse("<x><b/><a/></x>");
  EXPECT_FALSE(ValueEqual(*a, *b));
}

TEST(ValueTest, TextDiffersDetected) {
  NodePtr a = MustParse("<x>one</x>");
  NodePtr b = MustParse("<x>two</x>");
  EXPECT_FALSE(ValueEqual(*a, *b));
}

TEST(ValueTest, TagDiffersDetected) {
  EXPECT_FALSE(ValueEqual(*MustParse("<x/>"), *MustParse("<y/>")));
}

TEST(ValueTest, AttrValueDiffersDetected) {
  EXPECT_FALSE(ValueEqual(*MustParse("<x a='1'/>"), *MustParse("<x a='2'/>")));
  EXPECT_FALSE(ValueEqual(*MustParse("<x a='1'/>"), *MustParse("<x/>")));
}

TEST(ValueTest, CompareIsTotalOrder) {
  // T-node < E-node.
  NodePtr t = Node::Text("zzz");
  NodePtr e = Node::Element("aaa");
  EXPECT_LT(ValueCompare(*t, *e), 0);
  EXPECT_GT(ValueCompare(*e, *t), 0);
  // Texts by string.
  EXPECT_LT(ValueCompare(*Node::Text("a"), *Node::Text("b")), 0);
  // Elements by tag first.
  EXPECT_LT(ValueCompare(*MustParse("<a><z/></a>"), *MustParse("<b/>")), 0);
  // Then by children: shorter list first.
  EXPECT_LT(ValueCompare(*MustParse("<a><x/></a>"),
                         *MustParse("<a><x/><x/></a>")),
            0);
  // Then lexicographic by child value.
  EXPECT_LT(ValueCompare(*MustParse("<a><x>1</x></a>"),
                         *MustParse("<a><x>2</x></a>")),
            0);
  // Then attributes: fewer first.
  EXPECT_LT(ValueCompare(*MustParse("<a/>"), *MustParse("<a b='1'/>")), 0);
  EXPECT_LT(ValueCompare(*MustParse("<a b='1'/>"), *MustParse("<a b='2'/>")),
            0);
  EXPECT_LT(ValueCompare(*MustParse("<a b='1'/>"), *MustParse("<a c='1'/>")),
            0);
}

TEST(ValueTest, CompareAntisymmetric) {
  NodePtr docs[] = {
      MustParse("<a/>"), MustParse("<a>t</a>"), MustParse("<a b='1'/>"),
      MustParse("<b><c/></b>"), MustParse("<a><b/><c>x</c></a>")};
  for (auto& x : docs) {
    for (auto& y : docs) {
      int cx = ValueCompare(*x, *y);
      int cy = ValueCompare(*y, *x);
      EXPECT_EQ(cx, -cy);
      EXPECT_EQ(cx == 0, ValueEqual(*x, *y));
    }
  }
}

// ------------------------------------------------------------- Canonical

TEST(CanonicalTest, EqualValuesEqualCanon) {
  NodePtr a = MustParse("<x b='2' a='1'><y>t</y></x>");
  NodePtr b = MustParse("<x  a=\"1\"  b=\"2\" ><y>t</y></x>");
  EXPECT_EQ(Canonicalize(*a), Canonicalize(*b));
}

TEST(CanonicalTest, DifferentValuesDifferentCanon) {
  EXPECT_NE(Canonicalize(*MustParse("<x>1</x>")),
            Canonicalize(*MustParse("<x>2</x>")));
  // A text child "b" vs an element child <b/> must differ.
  EXPECT_NE(Canonicalize(*MustParse("<x>b</x>")),
            Canonicalize(*MustParse("<x><b/></x>")));
}

TEST(CanonicalTest, EscapingPreventsConfusion) {
  // Text "<y/>" vs element <y/> must canonicalize differently.
  NodePtr a = Node::Element("x");
  a->AddText("<y/>");
  NodePtr b = MustParse("<x><y/></x>");
  EXPECT_NE(Canonicalize(*a), Canonicalize(*b));
}

TEST(CanonicalTest, FingerprintMatchesValueEquality) {
  NodePtr a = MustParse("<x b='2' a='1'><y>t</y></x>");
  NodePtr b = MustParse("<x a='1' b='2'><y>t</y></x>");
  NodePtr c = MustParse("<x a='1' b='2'><y>u</y></x>");
  EXPECT_EQ(Fingerprint(*a).ToHex(), Fingerprint(*b).ToHex());
  EXPECT_NE(Fingerprint(*a).ToHex(), Fingerprint(*c).ToHex());
}

// ------------------------------------------------------------------ Path

TEST(PathTest, ParseAbsolute) {
  auto p = ParsePath("/db/dept/emp");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->absolute);
  ASSERT_EQ(p->steps.size(), 3u);
  EXPECT_EQ(p->ToString(), "/db/dept/emp");
}

TEST(PathTest, ParseRelativeAndEmpty) {
  auto p = ParsePath("Date/Month");
  ASSERT_TRUE(p.ok());
  EXPECT_FALSE(p->absolute);
  EXPECT_EQ(p->steps.size(), 2u);
  EXPECT_TRUE(ParsePath("")->empty());
  EXPECT_TRUE(ParsePath(".")->empty());
  EXPECT_TRUE(ParsePath("\\e")->empty());
  EXPECT_TRUE(ParsePath("/")->absolute);
}

TEST(PathTest, ParseRejectsEmptyStep) {
  EXPECT_FALSE(ParsePath("/a//b").ok());
}

TEST(PathTest, ConcatAndPrefix) {
  Path q = *ParsePath("/db/dept");
  Path r = *ParsePath("emp");
  Path full = q.Concat(r);
  EXPECT_EQ(full.ToString(), "/db/dept/emp");
  EXPECT_TRUE(q.IsProperPrefixOf(full));
  EXPECT_FALSE(full.IsProperPrefixOf(q));
  EXPECT_FALSE(full.IsProperPrefixOf(full));
}

TEST(PathTest, EvalElements) {
  NodePtr doc = MustParse(
      "<db><dept><name>fin</name></dept><dept><name>mkt</name></dept></db>");
  auto hits = EvalPath(*doc, *ParsePath("dept/name"));
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].node->TextContent(), "fin");
  EXPECT_EQ(hits[1].node->TextContent(), "mkt");
}

TEST(PathTest, EvalEmptyPathIsSelf) {
  NodePtr doc = MustParse("<a/>");
  auto hits = EvalPath(*doc, *ParsePath("."));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].node, doc.get());
}

TEST(PathTest, EvalAttributeTerminal) {
  NodePtr doc = MustParse("<item id='item1'><sub id='s'/></item>");
  auto hits = EvalPath(*doc, *ParsePath("id"));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_TRUE(hits[0].is_attr());
  EXPECT_EQ(hits[0].attr_name, "id");
  EXPECT_EQ(*hits[0].attr_owner->FindAttr("id"), "item1");
}

TEST(PathTest, EvalElementPreferredOverAttribute) {
  NodePtr doc = MustParse("<x id='attr'><id>elem</id></x>");
  auto hits = EvalPath(*doc, *ParsePath("id"));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_FALSE(hits[0].is_attr());
  EXPECT_EQ(hits[0].node->TextContent(), "elem");
}

TEST(PathTest, EvalNoMatch) {
  NodePtr doc = MustParse("<a><b/></a>");
  EXPECT_TRUE(EvalPath(*doc, *ParsePath("c/d")).empty());
}

// ------------------------------------------ canonical round-trip parity
// Persistence makes these load-bearing: a serialized tree must re-parse
// to the identical tree, or snapshots would drift on every save/open.

/// serialize(parse(serialize(tree))) must equal serialize(tree), compact
/// mode (pretty indentation around mixed content is presentation, not
/// data).
void ExpectStableRoundTrip(const Node& tree) {
  SerializeOptions compact;
  compact.pretty = false;
  std::string first = Serialize(tree, compact);
  auto reparsed = Parse(first);
  ASSERT_TRUE(reparsed.ok()) << first << "\n"
                             << reparsed.status().ToString();
  EXPECT_EQ(Serialize(**reparsed, compact), first);
}

TEST(RoundTripTest, TextWithQuotesCdataCloserAndRawAngle) {
  for (const char* text : {
           "plain",
           "a \"quoted\" phrase",
           "it's got 'apostrophes'",
           "a ]]> cdata closer",
           "raw > and < and & characters",
           ">>> ]]> <<<",
           "&amp; pre-escaped-looking text",
       }) {
    NodePtr e = Node::Element("t");
    e->AddText(text);
    ExpectStableRoundTrip(*e);
    // And the parsed text node carries the exact original bytes.
    SerializeOptions compact;
    compact.pretty = false;
    auto back = Parse(Serialize(*e, compact));
    ASSERT_TRUE(back.ok());
    ASSERT_EQ((*back)->children().size(), 1u);
    EXPECT_EQ((*back)->children()[0]->text(), text) << text;
  }
}

TEST(RoundTripTest, AttributeValuesWithEveryDelicateCharacter) {
  for (const char* value : {
           "simple",
           "double \" quote",
           "single ' quote",
           "both \" and '",
           "angle <brackets> and &amp-ish",
           "]]> in an attribute",
           "trailing space ",
       }) {
    NodePtr e = Node::Element("t");
    e->SetAttr("a", value);
    ExpectStableRoundTrip(*e);
    SerializeOptions compact;
    compact.pretty = false;
    auto back = Parse(Serialize(*e, compact));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*(*back)->FindAttr("a"), value) << value;
  }
}

TEST(RoundTripTest, AttributeOrderIsStable) {
  // Attributes live in name order whichever order they were set or parsed
  // in, so serialize → parse → serialize is a fixed point.
  NodePtr e = Node::Element("t");
  e->SetAttr("zeta", "1");
  e->SetAttr("alpha", "2");
  e->SetAttr("mid", "3");
  SerializeOptions compact;
  compact.pretty = false;
  std::string first = Serialize(*e, compact);
  EXPECT_EQ(first, "<t alpha=\"2\" mid=\"3\" zeta=\"1\"/>");
  auto back = Parse(first);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(Serialize(**back, compact), first);

  // Parsing the attributes in the opposite order converges to the same
  // bytes.
  auto reversed = Parse("<t zeta=\"1\" mid=\"3\" alpha=\"2\"/>");
  ASSERT_TRUE(reversed.ok());
  EXPECT_EQ(Serialize(**reversed, compact), first);
}

TEST(RoundTripTest, MixedContentRoundTripsCompact) {
  NodePtr e = Node::Element("p");
  e->AddText("before ");
  Node* b = e->AddElement("b");
  b->AddText("bold \"stuff\"");
  e->AddText(" after ]]>");
  ExpectStableRoundTrip(*e);
}

TEST(ParserTest, DuplicateAttributesAreRejected) {
  auto dup = Parse("<t a=\"1\" a=\"2\"/>");
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kParseError);
  EXPECT_NE(dup.status().message().find("duplicate"), std::string::npos);
  // Distinct names still parse.
  EXPECT_TRUE(Parse("<t a=\"1\" b=\"2\"/>").ok());
}

}  // namespace
}  // namespace xarch::xml
