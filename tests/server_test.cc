// Tests for the network subsystem: the frame codec, version negotiation,
// end-to-end query parity against in-process evaluation, protocol
// robustness against malformed frames (including a flip-every-byte sweep
// over a captured QUERY frame), admission control, and graceful drain.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include "client/client.h"
#include "persist/wire.h"
#include "server/net_util.h"
#include "server/protocol.h"
#include "server/server.h"
#include "xarch/durable.h"
#include "xarch/store_registry.h"

namespace xarch {
namespace {

// ------------------------------------------------------------- fixtures

constexpr const char* kKeys = R"(
(/, (db, {}))
(/db, (dept, {name}))
(/db/dept, (emp, {fn, ln}))
(/db/dept/emp, (sal, {}))
)";

std::string Emp(const std::string& fn, const std::string& ln,
                const std::string& sal) {
  return "<emp><fn>" + fn + "</fn><ln>" + ln + "</ln><sal>" + sal +
         "</sal></emp>";
}

std::vector<std::string> CompanyVersions() {
  return {
      "<db><dept><name>finance</name>" + Emp("John", "Doe", "50000") +
          Emp("Anna", "Smith", "61000") + "</dept></db>",
      "<db><dept><name>finance</name>" + Emp("John", "Doe", "55000") +
          Emp("Anna", "Smith", "61000") + "</dept></db>",
      "<db><dept><name>finance</name>" + Emp("John", "Doe", "55000") +
          "</dept><dept><name>research</name>" +
          Emp("Anna", "Smith", "62000") + "</dept></db>",
  };
}

keys::KeySpecSet ParseKeys() {
  auto spec = keys::ParseKeySpecSet(kKeys);
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  return std::move(*spec);
}

/// Fresh private scratch directory per test, removed on teardown.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag) {
    static std::atomic<uint64_t> counter{0};
    path_ = (std::filesystem::temp_directory_path() /
             ("xarch_server_test_" + tag + "_" + std::to_string(::getpid()) +
              "_" + std::to_string(counter.fetch_add(1))))
                .string();
    std::filesystem::create_directories(path_);
  }
  ~ScratchDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// A durable store on scratch disk plus a running server over it.
struct TestServer {
  std::unique_ptr<ScratchDir> dir;
  std::unique_ptr<Store> store;
  std::unique_ptr<server::Server> server;

  uint16_t port() const { return server->port(); }
};

TestServer StartServer(const std::string& backend = "archive",
                       server::ServerOptions options = {}) {
  TestServer out;
  out.dir = std::make_unique<ScratchDir>(backend);
  DurableOptions durable;
  durable.backend = backend;
  durable.store.spec = ParseKeys();
  if (backend == "archive") durable.store.use_index = true;
  auto store = OpenDurable(out.dir->path(), std::move(durable));
  EXPECT_TRUE(store.ok()) << store.status().ToString();
  out.store = std::move(*store);
  auto server = server::Server::Start(*out.store, std::move(options));
  EXPECT_TRUE(server.ok()) << server.status().ToString();
  out.server = std::move(*server);
  return out;
}

std::unique_ptr<Client> MustConnect(const TestServer& ts,
                                    ClientOptions options = {}) {
  auto client = Client::Connect("127.0.0.1", ts.port(), std::move(options));
  EXPECT_TRUE(client.ok()) << client.status().ToString();
  return std::move(*client);
}

// ------------------------------------------------------- frame codec unit

TEST(FrameCodecTest, RoundTripsTypeAndPayload) {
  auto frame = net::EncodeFrame(net::MessageType::kQuery, "/db @ version 1");
  ASSERT_TRUE(frame.ok());
  std::string buffer = *frame;
  net::Frame decoded;
  std::string detail;
  ASSERT_EQ(net::TryDecodeFrame(&buffer, &decoded, &detail),
            net::DecodeResult::kFrame)
      << detail;
  EXPECT_EQ(decoded.type, net::MessageType::kQuery);
  EXPECT_EQ(decoded.payload, "/db @ version 1");
  EXPECT_TRUE(buffer.empty());
}

TEST(FrameCodecTest, DecodesPipelinedFramesInOrder) {
  std::string buffer = *net::EncodeFrame(net::MessageType::kPing, "") +
                       *net::EncodeFrame(net::MessageType::kPong, "x");
  net::Frame first, second;
  ASSERT_EQ(net::TryDecodeFrame(&buffer, &first, nullptr),
            net::DecodeResult::kFrame);
  ASSERT_EQ(net::TryDecodeFrame(&buffer, &second, nullptr),
            net::DecodeResult::kFrame);
  EXPECT_EQ(first.type, net::MessageType::kPing);
  EXPECT_EQ(second.type, net::MessageType::kPong);
  EXPECT_EQ(second.payload, "x");
}

TEST(FrameCodecTest, EveryPrefixNeedsMoreBytes) {
  const std::string frame =
      *net::EncodeFrame(net::MessageType::kQuery, "/db history");
  for (size_t cut = 0; cut < frame.size(); ++cut) {
    std::string buffer = frame.substr(0, cut);
    net::Frame out;
    EXPECT_EQ(net::TryDecodeFrame(&buffer, &out, nullptr),
              net::DecodeResult::kNeedMore)
        << "prefix of " << cut << " bytes";
  }
}

TEST(FrameCodecTest, RejectsOversizedDeclaredLength) {
  std::string buffer = *net::EncodeFrame(net::MessageType::kPing, "abc");
  // Patch the length field to something absurd; CRC is irrelevant — the
  // length bound must trip before anything is read or allocated.
  persist::PatchU32(net::kMaxFrameBytes + 1, 0, &buffer);
  net::Frame out;
  std::string detail;
  EXPECT_EQ(net::TryDecodeFrame(&buffer, &out, &detail),
            net::DecodeResult::kMalformed);
  EXPECT_NE(detail.find("exceeds"), std::string::npos) << detail;
}

TEST(FrameCodecTest, RejectsZeroLengthBody) {
  std::string buffer = *net::EncodeFrame(net::MessageType::kPing, "");
  persist::PatchU32(0, 0, &buffer);
  net::Frame out;
  EXPECT_EQ(net::TryDecodeFrame(&buffer, &out, nullptr),
            net::DecodeResult::kMalformed);
}

TEST(FrameCodecTest, RejectsCorruptCrc) {
  std::string buffer = *net::EncodeFrame(net::MessageType::kPing, "abc");
  buffer[5] ^= 0x01;  // inside the masked CRC field
  net::Frame out;
  std::string detail;
  EXPECT_EQ(net::TryDecodeFrame(&buffer, &out, &detail),
            net::DecodeResult::kMalformed);
  EXPECT_NE(detail.find("CRC"), std::string::npos) << detail;
}

TEST(FrameCodecTest, RejectsPayloadOverFrameLimit) {
  std::string big(net::kMaxFrameBytes, 'x');  // +1 for the type octet
  auto frame = net::EncodeFrame(net::MessageType::kChunk, big);
  EXPECT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kInvalidArgument);
}

TEST(ProtocolPayloadTest, HelloAndStatsRoundTrip) {
  net::HelloRequest hello;
  hello.min_version = 3;
  hello.max_version = 9;
  hello.client_name = "unit";
  net::HelloRequest hello2;
  ASSERT_TRUE(
      net::DecodeHelloRequest(net::EncodeHelloRequest(hello), &hello2).ok());
  EXPECT_EQ(hello2.magic, net::kProtocolMagic);
  EXPECT_EQ(hello2.min_version, 3u);
  EXPECT_EQ(hello2.max_version, 9u);
  EXPECT_EQ(hello2.client_name, "unit");

  net::StatsReply stats;
  stats.queries = 7;
  stats.rejected_busy = 2;
  stats.store_versions = 5;
  stats.session_bytes_out = 1234;
  net::StatsReply stats2;
  ASSERT_TRUE(
      net::DecodeStatsReply(net::EncodeStatsReply(stats), &stats2).ok());
  EXPECT_EQ(stats2.queries, 7u);
  EXPECT_EQ(stats2.rejected_busy, 2u);
  EXPECT_EQ(stats2.store_versions, 5u);
  EXPECT_EQ(stats2.session_bytes_out, 1234u);
}

TEST(ProtocolPayloadTest, IngestDecodeRejectsTrailingGarbage) {
  net::IngestRequest request;
  request.documents = {"<a/>", "<b/>"};
  std::string payload = net::EncodeIngestRequest(request);
  net::IngestRequest out;
  ASSERT_TRUE(net::DecodeIngestRequest(payload, &out).ok());
  EXPECT_EQ(out.documents, request.documents);
  payload += "z";
  EXPECT_EQ(net::DecodeIngestRequest(payload, &out).code(),
            StatusCode::kDataLoss);
}

TEST(ProtocolPayloadTest, IngestDecodeRejectsImpossibleCount) {
  std::string payload;
  persist::PutU32(1u << 30, &payload);  // a billion documents, no bytes
  net::IngestRequest out;
  EXPECT_EQ(net::DecodeIngestRequest(payload, &out).code(),
            StatusCode::kDataLoss);
}

// ----------------------------------------------------------- negotiation

TEST(ServerTest, HandshakeAnnouncesBackendAndVersion) {
  TestServer ts = StartServer();
  auto client = MustConnect(ts);
  EXPECT_EQ(client->protocol_version(), net::kProtocolVersionMax);
  EXPECT_EQ(client->backend(), "durable(archive)");
  EXPECT_EQ(client->server_name(), "xarchd");
  EXPECT_TRUE(client->Ping().ok());
}

TEST(ServerTest, RejectsDisjointVersionRange) {
  TestServer ts = StartServer();
  ClientOptions options;
  options.min_version = 99;
  options.max_version = 120;
  auto client = Client::Connect("127.0.0.1", ts.port(), options);
  ASSERT_FALSE(client.ok());
  EXPECT_EQ(client.status().code(), StatusCode::kUnimplemented);
  EXPECT_NE(client.status().message().find("version"), std::string::npos);
}

TEST(ServerTest, NegotiatesDownToServerMax) {
  TestServer ts = StartServer();
  ClientOptions options;
  options.min_version = net::kProtocolVersionMin;
  options.max_version = 7;  // a future client offering more than we speak
  auto client = Client::Connect("127.0.0.1", ts.port(), options);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  EXPECT_EQ((*client)->protocol_version(), net::kProtocolVersionMax);
}

// -------------------------------------------------------------- parity

/// The acceptance gate: bytes from the network path must equal bytes from
/// the in-process path, across backends and query shapes.
class ParityTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ParityTest, NetworkQueryMatchesLocalQueryBytes) {
  const std::string backend = GetParam();
  TestServer ts = StartServer(backend);
  auto client = MustConnect(ts);

  const std::vector<std::string> versions = CompanyVersions();
  std::vector<std::string_view> views(versions.begin(), versions.end());
  auto count = client->Ingest(views);
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(*count, versions.size());

  // The local reference: a plain (non-durable) store of the same backend
  // over the same documents.
  StoreOptions options;
  options.spec = ParseKeys();
  if (backend == "archive") options.use_index = true;
  auto local = StoreRegistry::Create(backend, std::move(options));
  ASSERT_TRUE(local.ok());
  ASSERT_TRUE((*local)->AppendBatch(views).ok());

  std::vector<std::string> queries = {
      "/db @ version 1",
      "/db @ version 3",
      "/db/dept[name=\"finance\"]/emp[*] @ versions 1..3",
      "/db/dept[name=\"finance\"]/emp[fn=\"Anna\", ln=\"Smith\"] history",
  };
  // Diff queries need key-based change tracking, which the delta-only
  // incr-diff backend does not advertise.
  if (backend == "archive") queries.push_back("/db diff 1 3");
  for (const std::string& query : queries) {
    auto remote = client->QueryToString(query);
    ASSERT_TRUE(remote.ok()) << query << ": " << remote.status().ToString();
    StringSink local_sink;
    ASSERT_TRUE((*local)->Query(query, local_sink).ok()) << query;
    EXPECT_EQ(*remote, local_sink.data()) << query;
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, ParityTest,
                         ::testing::Values("archive", "incr-diff"));

TEST(ServerTest, IngestSurvivesServerRestart) {
  auto ts = std::make_unique<TestServer>(StartServer());
  const std::string dir = ts->dir->path();
  {
    auto client = MustConnect(*ts);
    const std::vector<std::string> versions = CompanyVersions();
    std::vector<std::string_view> views(versions.begin(), versions.end());
    ASSERT_TRUE(client->Ingest(views).ok());
  }
  ts->server->Join();
  auto durable = static_cast<DurableStore*>(ts->store.get());
  ASSERT_TRUE(durable->CheckpointIfDirty().ok());
  EXPECT_EQ(durable->log_records(), 0u);
  ts->store.reset();

  // Reopen the directory: a clean stop restores from the snapshot alone.
  DurableOptions options;
  options.backend = "archive";
  auto reopened = OpenDurable(dir, std::move(options));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->version_count(), 3u);
  auto server = server::Server::Start(**reopened, {});
  ASSERT_TRUE(server.ok());
  auto client = Client::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok());
  auto result = (*client)->QueryToString("/db @ version 2");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_NE(result->find("55000"), std::string::npos);
  ts->dir = nullptr;  // keep scratch alive until here
}

// -------------------------------------------------- protocol robustness

/// Raw-socket driver for sending arbitrary (including broken) bytes.
struct RawConnection {
  net::Socket socket;

  static RawConnection Open(const TestServer& ts) {
    auto connected = net::Connect("127.0.0.1", ts.port());
    EXPECT_TRUE(connected.ok()) << connected.status().ToString();
    return RawConnection{std::move(*connected)};
  }

  void Send(std::string_view bytes) {
    EXPECT_TRUE(net::WriteAll(socket, bytes).ok());
  }

  Status SendHello() {
    XARCH_RETURN_NOT_OK(net::WriteFrame(
        socket, net::MessageType::kHello,
        net::EncodeHelloRequest(net::HelloRequest{})));
    net::FrameReader reader(socket);
    net::Frame reply;
    XARCH_RETURN_NOT_OK(reader.ReadFrame(&reply, 5000, 5000));
    if (reply.type != net::MessageType::kHelloOk) {
      return Status::IoError("handshake rejected");
    }
    return Status::OK();
  }

  /// Reads one frame; kIoError on EOF (connection dropped by server).
  StatusOr<net::Frame> ReadOne(int timeout_ms = 5000) {
    net::FrameReader reader(socket);
    net::Frame frame;
    Status st = reader.ReadFrame(&frame, timeout_ms, timeout_ms);
    if (!st.ok()) return st;
    return frame;
  }
};

/// After any hostile input, the server must still answer a fresh healthy
/// client: crashed-or-wedged is the failure mode these tests hunt.
void ExpectServerAlive(const TestServer& ts) {
  auto client = Client::Connect("127.0.0.1", ts.port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  EXPECT_TRUE((*client)->Ping().ok());
}

TEST(ProtocolRobustnessTest, TruncatedLengthPrefixThenEof) {
  TestServer ts = StartServer();
  {
    RawConnection raw = RawConnection::Open(ts);
    raw.Send("\x06\x00");  // half a length field, then we vanish
    raw.socket.Close();
  }
  ExpectServerAlive(ts);
}

TEST(ProtocolRobustnessTest, OversizedDeclaredLengthIsRejected) {
  TestServer ts = StartServer();
  RawConnection raw = RawConnection::Open(ts);
  ASSERT_TRUE(raw.SendHello().ok());
  std::string frame = *net::EncodeFrame(net::MessageType::kPing, "");
  persist::PatchU32(256u * 1024 * 1024, 0, &frame);  // 256 MiB declared
  raw.Send(frame);
  auto reply = raw.ReadOne();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_EQ(reply->type, net::MessageType::kError);
  net::ErrorReply error;
  ASSERT_TRUE(net::DecodeErrorReply(reply->payload, &error).ok());
  EXPECT_EQ(error.code, net::ErrorCode::kMalformedFrame);
  // The connection is dropped after a framing error.
  auto next = raw.ReadOne();
  EXPECT_FALSE(next.ok());
  ExpectServerAlive(ts);
}

TEST(ProtocolRobustnessTest, BadCrcIsRejectedAndConnectionDropped) {
  TestServer ts = StartServer();
  RawConnection raw = RawConnection::Open(ts);
  ASSERT_TRUE(raw.SendHello().ok());
  std::string frame = *net::EncodeFrame(net::MessageType::kPing, "payload");
  frame[frame.size() - 1] ^= 0x40;  // flip a body bit; CRC now lies
  raw.Send(frame);
  auto reply = raw.ReadOne();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_EQ(reply->type, net::MessageType::kError);
  net::ErrorReply error;
  ASSERT_TRUE(net::DecodeErrorReply(reply->payload, &error).ok());
  EXPECT_EQ(error.code, net::ErrorCode::kMalformedFrame);
  ExpectServerAlive(ts);
}

TEST(ProtocolRobustnessTest, UnknownMessageTypeKeepsSessionUsable) {
  TestServer ts = StartServer();
  RawConnection raw = RawConnection::Open(ts);
  ASSERT_TRUE(raw.SendHello().ok());
  raw.Send(*net::EncodeFrame(static_cast<net::MessageType>(0x55), "???"));
  auto reply = raw.ReadOne();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_EQ(reply->type, net::MessageType::kError);
  net::ErrorReply error;
  ASSERT_TRUE(net::DecodeErrorReply(reply->payload, &error).ok());
  EXPECT_EQ(error.code, net::ErrorCode::kUnknownMessage);
  // Framing was intact, so the session survives: a PING still works.
  raw.Send(*net::EncodeFrame(net::MessageType::kPing, ""));
  auto pong = raw.ReadOne();
  ASSERT_TRUE(pong.ok()) << pong.status().ToString();
  EXPECT_EQ(pong->type, net::MessageType::kPong);
}

TEST(ProtocolRobustnessTest, QueryBeforeHelloIsRejected) {
  TestServer ts = StartServer();
  RawConnection raw = RawConnection::Open(ts);
  raw.Send(*net::EncodeFrame(net::MessageType::kQuery, "/db @ version 1"));
  auto reply = raw.ReadOne();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_EQ(reply->type, net::MessageType::kError);
  net::ErrorReply error;
  ASSERT_TRUE(net::DecodeErrorReply(reply->payload, &error).ok());
  EXPECT_EQ(error.code, net::ErrorCode::kBadRequest);
  ExpectServerAlive(ts);
}

TEST(ProtocolRobustnessTest, FlipEveryByteOfCapturedQueryFrame) {
  // The acceptance sweep: corrupt a captured QUERY frame at every byte
  // position. Whatever the server answers (structured error, drop), it
  // must neither crash nor wedge the listener for other sessions. One
  // shared server across the sweep keeps the test fast AND proves
  // damage does not accumulate across hostile connections.
  TestServer ts = StartServer();
  {
    auto client = MustConnect(ts);
    std::vector<std::string> versions = CompanyVersions();
    std::vector<std::string_view> views(versions.begin(), versions.end());
    ASSERT_TRUE(client->Ingest(views).ok());
  }
  const std::string frame =
      *net::EncodeFrame(net::MessageType::kQuery, "/db @ version 1");
  for (size_t i = 0; i < frame.size(); ++i) {
    std::string corrupt = frame;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0xFF);
    RawConnection raw = RawConnection::Open(ts);
    ASSERT_TRUE(raw.SendHello().ok()) << "byte " << i;
    raw.Send(corrupt);
    // Close our writing half so a server waiting for "more frame" (a
    // corrupted length can declare more bytes than we sent) sees EOF
    // instead of a stall.
    ::shutdown(raw.socket.fd(), SHUT_WR);
    // Drain whatever the server answers until it closes; any outcome but
    // a wedge is acceptable. 10 s ceiling = "not wedged".
    for (int hops = 0; hops < 8; ++hops) {
      auto reply = raw.ReadOne(10 * 1000);
      if (!reply.ok()) break;  // server dropped the connection: fine
    }
  }
  ExpectServerAlive(ts);
  // The sweep's corruptions must all have been flagged: each connection
  // either errored at frame level or produced a QUERY the store rejected.
  // (A flipped byte can also land in the query text and still parse — we
  // only require the server survived with framing violations counted.)
  EXPECT_GT(ts.server->StatsSnapshot().protocol_errors, 0u);
}

// ---------------------------------------------------- admission control

TEST(AdmissionControlTest, OverInflightGateGetsBusyAndExactRejectCount) {
  // Gate of 2, with 2 queries parked inside the gate via the test hook:
  // the third query must bounce with BUSY and rejected must be exactly 1.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> parked{0};
  server::ServerOptions options;
  options.session_threads = 4;
  options.max_inflight_queries = 2;
  options.query_gate_hook = [&] {
    parked.fetch_add(1);
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  };
  TestServer ts = StartServer("archive", std::move(options));
  {
    auto seeder = MustConnect(ts);
    std::vector<std::string> versions = CompanyVersions();
    std::vector<std::string_view> views(versions.begin(), versions.end());
    ASSERT_TRUE(seeder->Ingest(views).ok());
  }

  auto first = MustConnect(ts);
  auto second = MustConnect(ts);
  auto third = MustConnect(ts);
  std::thread t1([&] {
    auto result = first->QueryToString("/db @ version 1");
    EXPECT_TRUE(result.ok()) << result.status().ToString();
  });
  std::thread t2([&] {
    auto result = second->QueryToString("/db @ version 2");
    EXPECT_TRUE(result.ok()) << result.status().ToString();
  });
  // Wait until both are provably parked INSIDE the admission gate.
  while (parked.load() < 2) std::this_thread::yield();

  auto bounced = third->QueryToString("/db @ version 3");
  EXPECT_FALSE(bounced.ok());
  EXPECT_EQ(third->last_error_code(), net::ErrorCode::kBusy);

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
    cv.notify_all();
  }
  t1.join();
  t2.join();

  const server::ServerStats stats = ts.server->StatsSnapshot();
  EXPECT_EQ(stats.rejected_busy, 1u);
  EXPECT_EQ(stats.queries, 2u);
  // The bounced session is still healthy: BUSY is a response, not a drop.
  EXPECT_TRUE(third->Ping().ok());
  auto retry = third->QueryToString("/db @ version 3");
  EXPECT_TRUE(retry.ok()) << retry.status().ToString();
}

// ---------------------------------------------------- graceful shutdown

TEST(ShutdownTest, DrainCompletesInFlightQueryBeforeStopping) {
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> parked{0};
  server::ServerOptions options;
  options.query_gate_hook = [&] {
    parked.fetch_add(1);
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  };
  TestServer ts = StartServer("archive", std::move(options));
  {
    auto seeder = MustConnect(ts);
    std::vector<std::string> versions = CompanyVersions();
    std::vector<std::string_view> views(versions.begin(), versions.end());
    ASSERT_TRUE(seeder->Ingest(views).ok());
  }
  auto client = MustConnect(ts);
  std::thread slow([&] {
    auto result = client->QueryToString("/db @ version 1");
    // The drain must have let this query finish and deliver its bytes.
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_NE(result->find("<db>"), std::string::npos);
  });
  while (parked.load() < 1) std::this_thread::yield();

  ts.server->RequestStop();
  EXPECT_TRUE(ts.server->stop_requested());
  // New connections are refused once the listener is down.
  auto late = Client::Connect("127.0.0.1", ts.port());
  EXPECT_FALSE(late.ok());

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
    cv.notify_all();
  }
  ts.server->Join();  // must not hang: the parked query was released
  slow.join();
  EXPECT_EQ(ts.server->StatsSnapshot().sessions_active, 0u);
}

TEST(ShutdownTest, ShutdownFrameStopsServerAndCheckpointHookCompacts) {
  TestServer ts = StartServer();
  auto client = MustConnect(ts);
  std::vector<std::string> versions = CompanyVersions();
  std::vector<std::string_view> views(versions.begin(), versions.end());
  ASSERT_TRUE(client->Ingest(views).ok());
  ASSERT_TRUE(client->Shutdown().ok());
  ts.server->WaitForStopRequest();  // returns because SHUTDOWN set the flag
  ts.server->Join();

  // The xarchd clean-stop sequence: after the drain, the WAL compacts.
  auto durable = static_cast<DurableStore*>(ts.store.get());
  EXPECT_GT(durable->log_records(), 0u);
  ASSERT_TRUE(durable->CheckpointIfDirty().ok());
  EXPECT_EQ(durable->log_records(), 0u);
  // Already-compact stores skip the snapshot rewrite (still OK).
  ASSERT_TRUE(durable->CheckpointIfDirty().ok());
}

// ------------------------------------------------------------- counters

TEST(StatsTest, CountsQueriesBytesAndSessions) {
  TestServer ts = StartServer();
  auto client = MustConnect(ts);
  std::vector<std::string> versions = CompanyVersions();
  std::vector<std::string_view> views(versions.begin(), versions.end());
  ASSERT_TRUE(client->Ingest(views).ok());
  ASSERT_TRUE(client->QueryToString("/db @ version 1").ok());
  ASSERT_TRUE(client->QueryToString("/db @ version 2").ok());
  auto stats = client->Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->queries, 2u);
  EXPECT_EQ(stats->ingests, 1u);
  EXPECT_EQ(stats->documents_ingested, 3u);
  EXPECT_EQ(stats->store_versions, 3u);
  EXPECT_EQ(stats->sessions_opened, 1u);
  EXPECT_EQ(stats->sessions_active, 1u);
  EXPECT_EQ(stats->session_queries, 2u);
  EXPECT_EQ(stats->session_ingests, 1u);
  EXPECT_GT(stats->bytes_in, 0u);
  EXPECT_GT(stats->bytes_out, 0u);
  EXPECT_GT(stats->session_bytes_in, 0u);
  EXPECT_GT(stats->session_bytes_out, 0u);
  EXPECT_GT(stats->query_latency_p99_us, 0u);
  EXPECT_GE(stats->query_latency_p99_us, stats->query_latency_p50_us);
}

TEST(StatsTest, QueryErrorsDoNotCountAsQueries) {
  TestServer ts = StartServer();
  auto client = MustConnect(ts);
  auto bad = client->QueryToString("this is not XAQL @@@");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(client->last_error_code(), net::ErrorCode::kQueryFailed);
  auto stats = client->Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->queries, 0u);
}

// ---------------------------------------------------------- observability

TEST(MetricsTest, ScrapeReturnsPrometheusTextCoveringAllSeams) {
  TestServer ts = StartServer();
  auto client = MustConnect(ts);
  EXPECT_EQ(client->protocol_version(), 2u);
  std::vector<std::string> versions = CompanyVersions();
  std::vector<std::string_view> views(versions.begin(), versions.end());
  ASSERT_TRUE(client->Ingest(views).ok());
  ASSERT_TRUE(client->QueryToString("/db @ version 1").ok());

  auto text = client->Metrics();
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  // One scrape covers the query engine, ingest, WAL, and the server.
  for (const char* family :
       {"xarch_queries_total", "xarch_ingest_batches_total",
        "xarch_wal_appends_total", "xarch_server_query_latency_us",
        "xarch_server_sessions_opened_total", "xarch_server_frames_total"}) {
    EXPECT_NE(text->find(family), std::string::npos)
        << family << " missing from scrape";
  }
  EXPECT_NE(text->find("# TYPE xarch_server_query_latency_us histogram"),
            std::string::npos);
}

TEST(MetricsTest, V1SessionGetsUnknownMessageForMetrics) {
  TestServer ts = StartServer();
  ClientOptions options;
  options.max_version = 1;
  auto client = MustConnect(ts, options);
  EXPECT_EQ(client->protocol_version(), 1u);
  auto text = client->Metrics();
  EXPECT_FALSE(text.ok());
  // A v1 query still round-trips: the flags octet is v2-only.
  std::vector<std::string> versions = CompanyVersions();
  std::vector<std::string_view> views(versions.begin(), versions.end());
  ASSERT_TRUE(client->Ingest(views).ok());
  EXPECT_TRUE(client->QueryToString("/db @ version 1").ok());
}

TEST(TraceWireTest, TracedQueryDeliversSpanTreeAndSameBytes) {
  TestServer ts = StartServer();
  auto client = MustConnect(ts);
  std::vector<std::string> versions = CompanyVersions();
  std::vector<std::string_view> views(versions.begin(), versions.end());
  ASSERT_TRUE(client->Ingest(views).ok());

  auto plain = client->QueryToString("/db @ version 2");
  ASSERT_TRUE(plain.ok());
  std::string trace;
  auto traced = client->QueryToString("/db @ version 2", &trace);
  ASSERT_TRUE(traced.ok()) << traced.status().ToString();
  // Tracing changes the response stream (one TRACE frame), never the
  // result bytes.
  EXPECT_EQ(*plain, *traced);
  EXPECT_NE(trace.find("trace:"), std::string::npos) << trace;
  EXPECT_NE(trace.find("parse"), std::string::npos);
  EXPECT_NE(trace.find("eval"), std::string::npos);
}

TEST(TraceWireTest, UntracedV2QueryGetsNoTraceFrame) {
  TestServer ts = StartServer();
  auto client = MustConnect(ts);
  std::vector<std::string> versions = CompanyVersions();
  std::vector<std::string_view> views(versions.begin(), versions.end());
  ASSERT_TRUE(client->Ingest(views).ok());
  // Query() without trace_out leaves the flag clear; the stream is
  // CHUNK* DONE exactly as at v1 (the loop would surface an unexpected
  // TRACE frame as an error if the server sent one).
  auto result = client->QueryToString("/db @ version 1");
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->size(), 0u);
}

}  // namespace
}  // namespace xarch
