// Deterministic fault-injection recovery: FaultVfs fails every possible
// Nth write/sync/rename/truncate during WAL appends, checkpoints, and
// SaveToFile, then the store is "rebooted" over the now-healthy base and
// must satisfy the durability invariants — every acknowledged append
// survives, nothing is double-applied, torn tails are truncated away, and
// a failed atomic save never disturbs the previous snapshot.
//
// Everything runs on MemVfs under the fault wrapper, so the sweeps are
// exact (counters size them) and repeatable byte-for-byte.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "persist/log.h"
#include "vfs/fault_vfs.h"
#include "vfs/mem_vfs.h"
#include "vfs/vfs.h"
#include "xarch/durable.h"
#include "xarch/store.h"
#include "xarch/store_registry.h"

namespace xarch {
namespace {

using vfs::FaultVfs;
using Op = vfs::FaultVfs::Op;

constexpr const char* kKeys = R"(
(/, (db, {}))
(/db, (entry, {id}))
(/db/entry, (note, {}))
)";

StoreOptions OptionsWithSpec() {
  auto spec = keys::ParseKeySpecSet(kKeys);
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  StoreOptions options;
  options.spec = std::move(spec).value();
  return options;
}

/// The nth version of a tiny keyed database; deterministic so every sweep
/// iteration replays the identical byte stream.
std::string Doc(int n) {
  std::string xml = "<db>";
  for (int i = 1; i <= n; ++i) {
    xml += "<entry><id>" + std::to_string(i) + "</id><note>note " +
           std::to_string(i * 7 + n) + "</note></entry>";
  }
  xml += "</db>";
  return xml;
}

/// fsync on every record so kSync traps have something to hit (MemVfs
/// syncs are free).
DurableOptions Opts(vfs::Vfs* vfs) {
  DurableOptions options;
  options.backend = "archive";
  options.store = OptionsWithSpec();
  options.fsync = persist::FsyncPolicy::kEveryRecord;
  options.vfs = vfs;
  return options;
}

// ------------------------------------------------------ FaultVfs mechanics

TEST(FaultVfsTest, TrapsAreOneShotAndCountersRun) {
  vfs::MemVfs mem;
  FaultVfs fault(&mem);

  auto file = fault.OpenWritable("f", vfs::WriteMode::kTruncate);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("one").ok());
  EXPECT_EQ(fault.Count(Op::kWrite), 1u);

  // Arm the 2nd write from now: the next Append passes, the one after
  // fails, and the trap disarms itself.
  fault.FailNth(Op::kWrite, 2);
  ASSERT_TRUE((*file)->Append("two").ok());
  EXPECT_FALSE((*file)->Append("three").ok());
  ASSERT_TRUE((*file)->Append("four").ok());
  EXPECT_EQ(fault.faults_injected(), 1u);
  ASSERT_TRUE((*file)->Close().ok());
  EXPECT_EQ(*mem.ReadFile("f"), "onetwofour");

  // Clear() disarms a pending trap.
  fault.FailNth(Op::kRename, 1);
  fault.Clear();
  ASSERT_TRUE(fault.Rename("f", "g").ok());
  EXPECT_EQ(fault.faults_injected(), 1u);
}

TEST(FaultVfsTest, TornWritePersistsExactlyThePrefix) {
  vfs::MemVfs mem;
  FaultVfs fault(&mem);
  auto file = fault.OpenWritable("torn", vfs::WriteMode::kTruncate);
  ASSERT_TRUE(file.ok());
  fault.FailNth(Op::kWrite, 1, /*persist_prefix=*/3);
  EXPECT_FALSE((*file)->Append("abcdef").ok());
  EXPECT_EQ(*mem.ReadFile("torn"), "abc");
}

// ------------------------------------------------------- WAL append sweep

// Fail the Nth WAL write, for every N the scenario performs, with both a
// clean failure (no bytes land) and a torn write (3 bytes land). After the
// "crash", reopening over the healthy base must recover exactly the
// acknowledged appends — the torn record is truncated away, never
// half-applied, and the log keeps accepting new records.
TEST(DurableVfsFaultTest, EveryNthWalWriteFailsAndRecovers) {
  const int kDocs = 4;

  // Sizing run: the same scenario fault-free, counting writes.
  uint64_t total_writes = 0;
  {
    vfs::MemVfs mem;
    FaultVfs fault(&mem);
    auto store = OpenDurable("d", Opts(&fault));
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    for (int i = 1; i <= kDocs; ++i) {
      ASSERT_TRUE((*store)->Append(Doc(i)).ok());
    }
    total_writes = fault.Count(Op::kWrite);
  }
  ASSERT_GE(total_writes, static_cast<uint64_t>(kDocs));

  for (uint64_t n = 1; n <= total_writes; ++n) {
    for (size_t prefix : {size_t{0}, size_t{3}}) {
      SCOPED_TRACE("write #" + std::to_string(n) + " prefix " +
                   std::to_string(prefix));
      vfs::MemVfs mem;
      FaultVfs fault(&mem);
      fault.FailNth(Op::kWrite, n, prefix);

      uint32_t acked = 0;
      bool saw_failure = false;
      {
        auto store = OpenDurable("d", Opts(&fault));
        if (!store.ok()) {
          saw_failure = true;  // the log header write died
        } else {
          for (int i = 1; i <= kDocs; ++i) {
            if (!(*store)->Append(Doc(i)).ok()) {
              saw_failure = true;
              break;
            }
            ++acked;
          }
        }
      }  // crash: drop the store, only the base files remain
      EXPECT_TRUE(saw_failure);
      EXPECT_EQ(fault.faults_injected(), 1u);

      auto reopened = OpenDurable("d", Opts(&mem));
      ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
      ASSERT_EQ((*reopened)->version_count(), acked);
      for (Version v = 1; v <= acked; ++v) {
        auto got = (*reopened)->Retrieve(v);
        ASSERT_TRUE(got.ok()) << "v" << v << ": " << got.status().ToString();
        EXPECT_FALSE(got->empty());
      }
      // The truncated log keeps accepting appends, and they stick.
      ASSERT_TRUE((*reopened)->Append(Doc(kDocs + 1)).ok());
      auto again = OpenDurable("d", Opts(&mem));
      ASSERT_TRUE(again.ok());
      EXPECT_EQ((*again)->version_count(), acked + 1);
    }
  }
}

// A failed fsync is weaker than a failed write: the record bytes may be
// durable even though the append was not acknowledged. Recovery must land
// on acked or acked+1 versions — never fewer (acknowledged loss), never
// more (double-apply).
TEST(DurableVfsFaultTest, EveryNthWalSyncFailsAndRecovers) {
  const int kDocs = 4;
  uint64_t total_syncs = 0;
  {
    vfs::MemVfs mem;
    FaultVfs fault(&mem);
    auto store = OpenDurable("d", Opts(&fault));
    ASSERT_TRUE(store.ok());
    for (int i = 1; i <= kDocs; ++i) {
      ASSERT_TRUE((*store)->Append(Doc(i)).ok());
    }
    total_syncs = fault.Count(Op::kSync);
  }
  ASSERT_GE(total_syncs, static_cast<uint64_t>(kDocs));

  for (uint64_t n = 1; n <= total_syncs; ++n) {
    SCOPED_TRACE("sync #" + std::to_string(n));
    vfs::MemVfs mem;
    FaultVfs fault(&mem);
    fault.FailNth(Op::kSync, n);

    uint32_t acked = 0;
    bool saw_failure = false;
    {
      auto store = OpenDurable("d", Opts(&fault));
      if (!store.ok()) {
        saw_failure = true;
      } else {
        for (int i = 1; i <= kDocs; ++i) {
          if (!(*store)->Append(Doc(i)).ok()) {
            saw_failure = true;
            break;
          }
          ++acked;
        }
      }
    }
    EXPECT_TRUE(saw_failure);

    auto reopened = OpenDurable("d", Opts(&mem));
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    EXPECT_GE((*reopened)->version_count(), acked);
    EXPECT_LE((*reopened)->version_count(), acked + 1);
    for (Version v = 1; v <= (*reopened)->version_count(); ++v) {
      EXPECT_TRUE((*reopened)->Retrieve(v).ok()) << "v" << v;
    }
  }
}

// ------------------------------------------------------- checkpoint sweep

// CompactNow = snapshot (write tmp, sync, rename, dir-sync) + log reset
// (truncate, header write, sync). Fail every possible Nth op of every
// kind: whatever stage dies, a reboot recovers ALL versions exactly once —
// snapshot-or-log, with the version-skip replay absorbing the
// snapshot-written-but-log-not-truncated window.
TEST(DurableVfsFaultTest, EveryNthCheckpointOpFailsAndRecovers) {
  const int kDocs = 3;

  // Sizing run: count each op kind inside CompactNow alone.
  uint64_t counts[FaultVfs::kOpCount] = {};
  {
    vfs::MemVfs mem;
    FaultVfs fault(&mem);
    auto store = OpenDurable("d", Opts(&fault));
    ASSERT_TRUE(store.ok());
    for (int i = 1; i <= kDocs; ++i) {
      ASSERT_TRUE((*store)->Append(Doc(i)).ok());
    }
    fault.ResetCounters();
    auto* durable = static_cast<DurableStore*>(store->get());
    ASSERT_TRUE(durable->CompactNow().ok());
    for (int op = 0; op < FaultVfs::kOpCount; ++op) {
      counts[op] = fault.Count(static_cast<Op>(op));
    }
  }
  // The checkpoint must exercise every interceptable op kind, or the
  // sweep below silently shrinks.
  EXPECT_GT(counts[static_cast<int>(Op::kWrite)], 0u);
  EXPECT_GT(counts[static_cast<int>(Op::kSync)], 0u);
  EXPECT_GT(counts[static_cast<int>(Op::kRename)], 0u);
  EXPECT_GT(counts[static_cast<int>(Op::kTruncate)], 0u);

  for (int op = 0; op < FaultVfs::kOpCount; ++op) {
    for (uint64_t n = 1; n <= counts[op]; ++n) {
      SCOPED_TRACE("op " + std::to_string(op) + " #" + std::to_string(n));
      vfs::MemVfs mem;
      FaultVfs fault(&mem);
      {
        auto store_or = DurableStore::Open("d", Opts(&fault));
        ASSERT_TRUE(store_or.ok());
        DurableStore& store = **store_or;
        for (int i = 1; i <= kDocs; ++i) {
          ASSERT_TRUE(store.Append(Doc(i)).ok());
        }
        fault.FailNth(static_cast<Op>(op), n);
        EXPECT_FALSE(store.CompactNow().ok());
      }  // crash mid-checkpoint

      auto reopened = OpenDurable("d", Opts(&mem));
      ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
      ASSERT_EQ((*reopened)->version_count(),
                static_cast<uint32_t>(kDocs));  // all there, none twice
      for (Version v = 1; v <= static_cast<Version>(kDocs); ++v) {
        EXPECT_TRUE((*reopened)->Retrieve(v).ok()) << "v" << v;
      }
      // A later checkpoint on the healthy base completes and sticks.
      auto* durable = static_cast<DurableStore*>(reopened->get());
      ASSERT_TRUE(durable->CompactNow().ok());
      EXPECT_EQ(durable->log_records(), 0u);
      auto again = OpenDurable("d", Opts(&mem));
      ASSERT_TRUE(again.ok());
      EXPECT_EQ((*again)->version_count(), static_cast<uint32_t>(kDocs));
    }
  }
}

// ------------------------------------------------------- SaveToFile sweep

// A SaveToFile that dies at any write/sync/rename must leave the previous
// snapshot byte-identical and openable, with no .tmp straggler — the
// atomic-replace protocol either fully installs or fully backs out.
TEST(SaveToFileFaultTest, FailedSaveNeverDisturbsThePreviousSnapshot) {
  const std::string path = "store.xar";

  // Sizing run against a throwaway MemVfs.
  uint64_t counts[FaultVfs::kOpCount] = {};
  {
    vfs::MemVfs mem;
    FaultVfs fault(&mem);
    auto store = StoreRegistry::Create("archive", OptionsWithSpec());
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Append(Doc(1)).ok());
    ASSERT_TRUE((*store)->SaveToFile(path, &fault).ok());
    for (int op = 0; op < FaultVfs::kOpCount; ++op) {
      counts[op] = fault.Count(static_cast<Op>(op));
    }
  }
  EXPECT_GT(counts[static_cast<int>(Op::kWrite)], 0u);
  EXPECT_GT(counts[static_cast<int>(Op::kSync)], 0u);
  EXPECT_GT(counts[static_cast<int>(Op::kRename)], 0u);

  for (int op = 0; op < FaultVfs::kOpCount; ++op) {
    for (uint64_t n = 1; n <= counts[op]; ++n) {
      SCOPED_TRACE("op " + std::to_string(op) + " #" + std::to_string(n));
      vfs::MemVfs mem;

      // Install a good two-version snapshot first.
      auto old_store = StoreRegistry::Create("archive", OptionsWithSpec());
      ASSERT_TRUE(old_store.ok());
      ASSERT_TRUE((*old_store)->Append(Doc(1)).ok());
      ASSERT_TRUE((*old_store)->Append(Doc(2)).ok());
      ASSERT_TRUE((*old_store)->SaveToFile(path, &mem).ok());
      const std::string old_bytes = *mem.ReadFile(path);

      // A four-version save dies mid-protocol.
      auto new_store = StoreRegistry::Create("archive", OptionsWithSpec());
      ASSERT_TRUE(new_store.ok());
      for (int i = 1; i <= 4; ++i) {
        ASSERT_TRUE((*new_store)->Append(Doc(i)).ok());
      }
      FaultVfs fault(&mem);
      fault.FailNth(static_cast<Op>(op), n);
      EXPECT_FALSE((*new_store)->SaveToFile(path, &fault).ok());

      // The old snapshot is untouched, still opens, and no tmp remains.
      EXPECT_EQ(*mem.ReadFile(path), old_bytes);
      EXPECT_EQ(*mem.Exists(path + ".tmp"), false);
      auto opened = StoreRegistry::Open(path, {}, &mem);
      ASSERT_TRUE(opened.ok()) << opened.status().ToString();
      EXPECT_EQ((*opened)->version_count(), 2u);

      // And the healthy retry installs the new one.
      ASSERT_TRUE((*new_store)->SaveToFile(path, &mem).ok());
      auto fresh = StoreRegistry::Open(path, {}, &mem);
      ASSERT_TRUE(fresh.ok());
      EXPECT_EQ((*fresh)->version_count(), 4u);
    }
  }
}

// ---------------------------------------------------- sharded durability
//
// The sharded layout (docs/SHARDING.md) spreads one logical WAL across K
// per-shard WALs under a store-level version MANIFEST. The invariants are
// the single-WAL ones lifted to the store level: the manifest's commit
// point decides visibility, so a crash between shard commits (some shard
// WALs hold a version the manifest does not) must hide the partial
// version, and every ACKNOWLEDGED ingest must survive every reopen.

DurableOptions ShardedOpts(vfs::Vfs* vfs, size_t shards) {
  DurableOptions options = Opts(vfs);
  options.shards = shards;
  return options;
}

TEST(ShardedDurableFaultTest, OpenIngestReopenMatchesTheSingleWalLayout) {
  vfs::MemVfs mem;
  {
    auto store = OpenDurable("s", ShardedOpts(&mem, 2));
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    for (int i = 1; i <= 5; ++i) ASSERT_TRUE((*store)->Append(Doc(i)).ok());
  }
  auto reopened = OpenDurable("s", ShardedOpts(&mem, 2));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  ASSERT_EQ((*reopened)->version_count(), 5u);

  vfs::MemVfs plain_mem;
  auto plain = OpenDurable("p", Opts(&plain_mem));
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  for (int i = 1; i <= 5; ++i) ASSERT_TRUE((*plain)->Append(Doc(i)).ok());
  for (Version v = 1; v <= 5; ++v) {
    EXPECT_EQ(*(*reopened)->Retrieve(v), *(*plain)->Retrieve(v)) << "v" << v;
  }
}

TEST(ShardedDurableFaultTest, ManifestCommitFailureHidesTheBatch) {
  vfs::MemVfs mem;
  FaultVfs fault(&mem);
  {
    auto store = OpenDurable("s", ShardedOpts(&fault, 2));
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    ASSERT_TRUE((*store)->Append(Doc(1)).ok());

    // Kill the manifest publish (its atomic rename): every shard WAL has
    // already logged version 2, but the batch was never acknowledged.
    fault.FailNth(Op::kRename, 1);
    EXPECT_FALSE((*store)->Append(Doc(2)).ok());
    EXPECT_EQ((*store)->version_count(), 1u);
    EXPECT_EQ(fault.faults_injected(), 1u);

    // The shards are now unaligned with the manifest: further ingest is
    // refused (poisoned) until a reopen realigns them.
    EXPECT_FALSE((*store)->Append(Doc(3)).ok());
  }  // crash

  auto reopened = OpenDurable("s", ShardedOpts(&mem, 2));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->version_count(), 1u);  // the manifest hides v2
  EXPECT_TRUE((*reopened)->Retrieve(1).ok());
  EXPECT_FALSE((*reopened)->Retrieve(2).ok());

  // The clamped WALs accept new versions, and they stick.
  ASSERT_TRUE((*reopened)->Append(Doc(2)).ok());
  auto again = OpenDurable("s", ShardedOpts(&mem, 2));
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ((*again)->version_count(), 2u);
  EXPECT_TRUE((*again)->Retrieve(2).ok());
}

TEST(ShardedDurableFaultTest, TornTailOnOneShardIsTruncatedAway) {
  vfs::MemVfs mem;
  {
    auto store = OpenDurable("s", ShardedOpts(&mem, 2));
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    for (int i = 1; i <= 3; ++i) ASSERT_TRUE((*store)->Append(Doc(i)).ok());
  }
  // A crash mid-write leaves half a record at the tail of ONE shard's WAL;
  // the other shard is intact.
  auto file =
      mem.OpenWritable("s/shard-000/ingest.log", vfs::WriteMode::kAppend);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append(std::string("\x13\x37 torn", 7)).ok());
  ASSERT_TRUE((*file)->Close().ok());

  auto reopened = OpenDurable("s", ShardedOpts(&mem, 2));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->version_count(), 3u);
  for (Version v = 1; v <= 3; ++v) {
    auto got = (*reopened)->Retrieve(v);
    ASSERT_TRUE(got.ok()) << "v" << v << ": " << got.status().ToString();
    EXPECT_FALSE(got->empty());
  }
  // The truncated shard WAL keeps accepting records.
  ASSERT_TRUE((*reopened)->Append(Doc(4)).ok());
  auto again = OpenDurable("s", ShardedOpts(&mem, 2));
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ((*again)->version_count(), 4u);
}

// The single-WAL write sweep, lifted to the sharded layout: fail every
// possible Nth write (clean and torn) across directory creation, the
// per-shard WAL appends, and the manifest publishes. Whatever dies, a
// reopen over the healthy base must recover exactly the acknowledged
// versions and keep accepting ingest.
TEST(ShardedDurableFaultTest, EveryNthWriteFailsAndRecovers) {
  const int kDocs = 3;

  uint64_t total_writes = 0;
  {
    vfs::MemVfs mem;
    FaultVfs fault(&mem);
    auto store = OpenDurable("s", ShardedOpts(&fault, 2));
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    for (int i = 1; i <= kDocs; ++i) {
      ASSERT_TRUE((*store)->Append(Doc(i)).ok());
    }
    total_writes = fault.Count(Op::kWrite);
  }
  ASSERT_GE(total_writes, static_cast<uint64_t>(kDocs));

  for (uint64_t n = 1; n <= total_writes; ++n) {
    for (size_t prefix : {size_t{0}, size_t{3}}) {
      SCOPED_TRACE("write #" + std::to_string(n) + " prefix " +
                   std::to_string(prefix));
      vfs::MemVfs mem;
      FaultVfs fault(&mem);
      fault.FailNth(Op::kWrite, n, prefix);

      uint32_t acked = 0;
      bool saw_failure = false;
      {
        auto store = OpenDurable("s", ShardedOpts(&fault, 2));
        if (!store.ok()) {
          saw_failure = true;  // creation died (manifest or a WAL header)
        } else {
          for (int i = 1; i <= kDocs; ++i) {
            if (!(*store)->Append(Doc(i)).ok()) {
              saw_failure = true;
              break;
            }
            ++acked;
          }
        }
      }  // crash: drop the store, only the base files remain
      EXPECT_TRUE(saw_failure);
      EXPECT_EQ(fault.faults_injected(), 1u);

      auto reopened = OpenDurable("s", ShardedOpts(&mem, 2));
      ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
      ASSERT_EQ((*reopened)->version_count(), acked);
      for (Version v = 1; v <= acked; ++v) {
        auto got = (*reopened)->Retrieve(v);
        ASSERT_TRUE(got.ok()) << "v" << v << ": " << got.status().ToString();
        EXPECT_FALSE(got->empty());
      }
      ASSERT_TRUE((*reopened)->Append(Doc(kDocs + 1)).ok());
      auto again = OpenDurable("s", ShardedOpts(&mem, 2));
      ASSERT_TRUE(again.ok()) << again.status().ToString();
      EXPECT_EQ((*again)->version_count(), acked + 1u);
    }
  }
}

}  // namespace
}  // namespace xarch
