// Store API v2: registry resolution, backend parity, capability honesty,
// one-pass batched ingest, and materialization-free streaming retrieval.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/archive.h"
#include "synth/words.h"
#include "util/random.h"
#include "xarch/store.h"
#include "xarch/store_registry.h"
#include "xarch/version_store.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xarch {
namespace {

constexpr const char* kKeys = R"(
(/, (db, {}))
(/db, (entry, {id}))
(/db/entry, (note, {}))
)";

keys::KeySpecSet MustSpec() {
  auto spec = keys::ParseKeySpecSet(kKeys);
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  return std::move(spec).value();
}

StoreOptions OptionsWithSpec() {
  StoreOptions options;
  options.spec = MustSpec();
  options.checkpoint_every = 3;
  return options;
}

/// Versions of a small keyed database whose prose comes from synth/words:
/// every step modifies a couple of notes, inserts one entry, and
/// occasionally deletes one, so batches exercise appearance,
/// disappearance, and content change.
class WordsVersions {
 public:
  explicit WordsVersions(uint64_t seed) : rng_(seed) {
    for (int i = 0; i < 10; ++i) Insert();
  }

  std::string Next() {
    for (int m = 0; m < 2 && !entries_.empty(); ++m) {
      entries_[rng_.Uniform(0, entries_.size() - 1)].second =
          synth::Sentence(rng_, 3, 8);
    }
    Insert();
    if (entries_.size() > 6 && rng_.Uniform(0, 2) == 0) {
      entries_.erase(entries_.begin() + rng_.Uniform(0, entries_.size() - 1));
    }
    std::string xml = "<db>";
    for (const auto& [id, note] : entries_) {
      xml += "<entry><id>" + std::to_string(id) + "</id><note>" + note +
             "</note></entry>";
    }
    xml += "</db>";
    return xml;
  }

 private:
  void Insert() {
    entries_.emplace_back(next_id_++, synth::Sentence(rng_, 3, 8));
  }

  Rng rng_;
  int next_id_ = 1;
  std::vector<std::pair<int, std::string>> entries_;
};

/// The store-canonical form of a version: what a one-version archive
/// reconstructs (keyed siblings in fingerprint order, default pretty
/// serialization). Feeding canonical text lets retrieval round-trip
/// byte-for-byte.
std::string Canonical(const std::string& text) {
  core::Archive archive(MustSpec());
  auto doc = xml::Parse(text);
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_TRUE(archive.AddVersion(**doc).ok());
  auto back = archive.RetrieveVersion(1);
  EXPECT_TRUE(back.ok());
  return xml::Serialize(**back);
}

std::vector<std::string> CanonicalVersions(uint64_t seed, int n) {
  WordsVersions gen(seed);
  std::vector<std::string> out;
  out.reserve(n);
  for (int v = 0; v < n; ++v) out.push_back(Canonical(gen.Next()));
  return out;
}

std::vector<std::string> RegisteredBackends() {
  std::vector<std::string> names;
  for (const auto* entry : StoreRegistry::Global().List()) {
    names.push_back(entry->name);
  }
  return names;
}

// ------------------------------------------------------------- registry

TEST(StoreRegistryTest, ResolvesEveryDocumentedBackend) {
  const std::vector<std::string> expected = {
      "archive",   "archive-weave",      "incr-diff",
      "cum-diff",  "full-copy",          "extmem",
      "compressed", "checkpoint-archive", "checkpoint-diff",
      "sharded"};
  for (const std::string& name : expected) {
    ASSERT_NE(StoreRegistry::Global().Find(name), nullptr) << name;
    auto store = StoreRegistry::Create(name, OptionsWithSpec());
    ASSERT_TRUE(store.ok()) << name << ": " << store.status().ToString();
    EXPECT_EQ((*store)->version_count(), 0u);
  }
  // And nothing undocumented sneaks in.
  EXPECT_EQ(RegisteredBackends().size(), expected.size());
}

TEST(StoreRegistryTest, UnknownBackendIsNotFound) {
  auto store = StoreRegistry::Create("no-such-backend", {});
  ASSERT_FALSE(store.ok());
  EXPECT_EQ(store.status().code(), StatusCode::kNotFound);
}

TEST(StoreRegistryTest, ArchiveBackendsRequireASpec) {
  for (const char* name : {"archive", "archive-weave", "extmem",
                           "checkpoint-archive"}) {
    auto store = StoreRegistry::Create(name, {});
    ASSERT_FALSE(store.ok()) << name;
    EXPECT_EQ(store.status().code(), StatusCode::kInvalidArgument) << name;
  }
}

TEST(StoreRegistryTest, CompressedWrapsAnyInnerBackend) {
  for (const char* inner : {"archive", "incr-diff", "full-copy"}) {
    StoreOptions options = OptionsWithSpec();
    options.inner = inner;
    auto store = StoreRegistry::Create("compressed", std::move(options));
    ASSERT_TRUE(store.ok()) << inner << ": " << store.status().ToString();
    EXPECT_EQ((*store)->name(), std::string("compressed(") + inner + ")");
  }
  StoreOptions options = OptionsWithSpec();
  options.inner = "compressed";
  EXPECT_FALSE(StoreRegistry::Create("compressed", std::move(options)).ok());
}

TEST(StoreRegistryTest, DuplicateRegistrationFails) {
  StoreRegistry registry;  // fresh, empty
  StoreRegistry::Entry entry;
  entry.name = "x";
  entry.factory = [](StoreOptions) -> StatusOr<std::unique_ptr<Store>> {
    return Status::Unimplemented("test backend");
  };
  EXPECT_TRUE(registry.Register(entry).ok());
  EXPECT_FALSE(registry.Register(entry).ok());
}

// ------------------------------------------------- parity over backends

class StoreParityTest : public ::testing::TestWithParam<std::string> {};

TEST_P(StoreParityTest, RoundTripsEveryVersion) {
  const std::string& backend = GetParam();
  auto store_or = StoreRegistry::Create(backend, OptionsWithSpec());
  ASSERT_TRUE(store_or.ok()) << store_or.status().ToString();
  Store& store = **store_or;

  const std::vector<std::string> texts = CanonicalVersions(/*seed=*/7, 8);
  for (const std::string& text : texts) {
    ASSERT_TRUE(store.Append(text).ok()) << backend;
  }
  ASSERT_EQ(store.version_count(), texts.size());
  EXPECT_GT(store.ByteSize(), 0u);
  EXPECT_FALSE(store.Retrieve(0).ok());
  EXPECT_FALSE(store.Retrieve(texts.size() + 1).ok());

  for (Version v = 1; v <= texts.size(); ++v) {
    auto got = store.Retrieve(v);
    ASSERT_TRUE(got.ok()) << backend << " v" << v << ": "
                          << got.status().ToString();
    if (backend == "extmem") {
      // The external archiver orders siblings by plain label, not by
      // fingerprint; byte-compare after re-canonicalization.
      EXPECT_EQ(Canonical(*got), texts[v - 1]) << backend << " v" << v;
    } else {
      EXPECT_EQ(*got, texts[v - 1]) << backend << " v" << v;
    }
  }
}

TEST_P(StoreParityTest, BatchIngestMatchesSequentialIngest) {
  const std::string& backend = GetParam();
  auto batch_or = StoreRegistry::Create(backend, OptionsWithSpec());
  ASSERT_TRUE(batch_or.ok());
  Store& batch = **batch_or;
  if (!batch.Has(kBatchIngest)) return;

  const std::vector<std::string> texts = CanonicalVersions(/*seed=*/11, 6);
  std::vector<std::string_view> views(texts.begin(), texts.end());
  ASSERT_TRUE(batch.AppendBatch(views).ok()) << backend;
  ASSERT_EQ(batch.version_count(), texts.size());

  auto seq_or = StoreRegistry::Create(backend, OptionsWithSpec());
  ASSERT_TRUE(seq_or.ok());
  Store& seq = **seq_or;
  for (const std::string& text : texts) ASSERT_TRUE(seq.Append(text).ok());

  for (Version v = 1; v <= texts.size(); ++v) {
    auto a = batch.Retrieve(v);
    auto b = seq.Retrieve(v);
    ASSERT_TRUE(a.ok() && b.ok()) << backend << " v" << v;
    EXPECT_EQ(*a, *b) << backend << " v" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(AllBackends, StoreParityTest,
                         ::testing::ValuesIn(RegisteredBackends()),
                         [](const auto& info) {
                           std::string name = info.param;
                           std::replace(name.begin(), name.end(), '-', '_');
                           return name;
                         });

// --------------------------------------------------- capability honesty

class CapabilityHonestyTest : public ::testing::TestWithParam<std::string> {};

TEST_P(CapabilityHonestyTest, AdvertisedCapabilitiesWorkOthersUnimplemented) {
  const std::string& backend = GetParam();
  auto store_or = StoreRegistry::Create(backend, OptionsWithSpec());
  ASSERT_TRUE(store_or.ok());
  Store& store = **store_or;

  const std::vector<std::string> texts = CanonicalVersions(/*seed=*/23, 3);
  ASSERT_TRUE(store.Append(texts[0]).ok());
  ASSERT_TRUE(store.Append(texts[1]).ok());

  // kBatchIngest.
  {
    std::vector<std::string_view> batch = {texts[2]};
    Status st = store.AppendBatch(batch);
    if (store.Has(kBatchIngest)) {
      EXPECT_TRUE(st.ok()) << backend << ": " << st.ToString();
    } else {
      EXPECT_EQ(st.code(), StatusCode::kUnimplemented) << backend;
    }
  }
  // kStreamingRetrieve.
  {
    StringSink sink;
    Status st = store.RetrieveTo(1, sink);
    if (store.Has(kStreamingRetrieve)) {
      EXPECT_TRUE(st.ok()) << backend << ": " << st.ToString();
      EXPECT_EQ(sink.data(), texts[0]) << backend;
    } else {
      EXPECT_EQ(st.code(), StatusCode::kUnimplemented) << backend;
    }
  }
  // kTemporalQueries.
  {
    auto history = store.History({{"db", {}}});
    auto changes = store.DiffVersions(1, 2);
    if (store.Has(kTemporalQueries)) {
      ASSERT_TRUE(history.ok()) << backend << ": "
                                << history.status().ToString();
      EXPECT_TRUE(history->Contains(1));
      EXPECT_TRUE(history->Contains(2));
      ASSERT_TRUE(changes.ok()) << backend << ": "
                                << changes.status().ToString();
      EXPECT_FALSE(changes->empty()) << backend;  // versions differ
    } else {
      EXPECT_EQ(history.status().code(), StatusCode::kUnimplemented)
          << backend;
      EXPECT_EQ(changes.status().code(), StatusCode::kUnimplemented)
          << backend;
    }
  }
  // kCheckpoint.
  {
    Status st = store.Checkpoint();
    if (store.Has(kCheckpoint)) {
      EXPECT_TRUE(st.ok()) << backend << ": " << st.ToString();
    } else {
      EXPECT_EQ(st.code(), StatusCode::kUnimplemented) << backend;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllBackends, CapabilityHonestyTest,
                         ::testing::ValuesIn(RegisteredBackends()),
                         [](const auto& info) {
                           std::string name = info.param;
                           std::replace(name.begin(), name.end(), '-', '_');
                           return name;
                         });

// ----------------------------------------------------- batched ingest

TEST(BatchIngestTest, TenVersionsAreOneMergePass) {
  const std::vector<std::string> texts = CanonicalVersions(/*seed=*/3, 10);
  std::vector<std::string_view> views(texts.begin(), texts.end());

  auto batch = StoreRegistry::Create("archive", OptionsWithSpec());
  ASSERT_TRUE(batch.ok());
  ASSERT_TRUE((*batch)->AppendBatch(views).ok());
  EXPECT_EQ((*batch)->Stats().merge_passes, 1u);

  auto seq = StoreRegistry::Create("archive", OptionsWithSpec());
  ASSERT_TRUE(seq.ok());
  for (const std::string& text : texts) ASSERT_TRUE((*seq)->Append(text).ok());
  EXPECT_EQ((*seq)->Stats().merge_passes, 10u);

  // The batched merge is not an approximation: the archives are
  // byte-identical.
  EXPECT_EQ((*batch)->StoredBytes(), (*seq)->StoredBytes());
}

TEST(BatchIngestTest, MultiMergeEqualsSequentialMergeAtCoreLevel) {
  for (auto strategy : {core::FrontierStrategy::kBuckets,
                        core::FrontierStrategy::kWeave}) {
    core::ArchiveOptions options;
    options.frontier = strategy;

    WordsVersions gen(/*seed=*/41);
    std::vector<std::string> texts;
    std::vector<xml::NodePtr> docs;
    std::vector<const xml::Node*> roots;
    for (int v = 0; v < 9; ++v) {
      texts.push_back(gen.Next());
      auto doc = xml::Parse(texts.back());
      ASSERT_TRUE(doc.ok());
      docs.push_back(std::move(doc).value());
      roots.push_back(docs.back().get());
    }

    // Sequential reference.
    core::Archive seq(MustSpec(), options);
    for (const auto* root : roots) ASSERT_TRUE(seq.AddVersion(*root).ok());

    // One batch.
    core::Archive batch(MustSpec(), options);
    ASSERT_TRUE(batch.AddVersions(roots).ok());
    ASSERT_TRUE(batch.Check().ok()) << batch.Check().ToString();
    EXPECT_EQ(batch.version_count(), 9u);
    EXPECT_EQ(batch.ToXml(), seq.ToXml());

    // Sequential prefix, then the rest as a batch (merging into a
    // non-empty archive).
    core::Archive mixed(MustSpec(), options);
    ASSERT_TRUE(mixed.AddVersion(*roots[0]).ok());
    ASSERT_TRUE(mixed.AddVersion(*roots[1]).ok());
    ASSERT_TRUE(
        mixed
            .AddVersions(std::vector<const xml::Node*>(roots.begin() + 2,
                                                       roots.end()))
            .ok());
    ASSERT_TRUE(mixed.Check().ok()) << mixed.Check().ToString();
    EXPECT_EQ(mixed.ToXml(), seq.ToXml());
  }
}

TEST(BatchIngestTest, BatchIsAtomicOnBadDocuments) {
  auto store = StoreRegistry::Create("archive", OptionsWithSpec());
  ASSERT_TRUE(store.ok());
  const std::vector<std::string> texts = CanonicalVersions(/*seed=*/5, 2);
  ASSERT_TRUE((*store)->Append(texts[0]).ok());

  // Second document violates the key spec (duplicate entry id).
  std::vector<std::string_view> batch = {
      texts[1],
      "<db><entry><id>1</id><note>a</note></entry>"
      "<entry><id>1</id><note>b</note></entry></db>"};
  EXPECT_FALSE((*store)->AppendBatch(batch).ok());
  EXPECT_EQ((*store)->version_count(), 1u);
  EXPECT_EQ((*store)->Stats().merge_passes, 1u);
}

TEST(BatchIngestTest, EmptyBatchIsANoOp) {
  auto store = StoreRegistry::Create("archive", OptionsWithSpec());
  ASSERT_TRUE(store.ok());
  EXPECT_TRUE((*store)->AppendBatch({}).ok());
  EXPECT_EQ((*store)->version_count(), 0u);
}

// ------------------------------------------------- streaming retrieval

TEST(StreamingRetrieveTest, AllocatesNoIntermediateTree) {
  auto store = StoreRegistry::Create("archive", OptionsWithSpec());
  ASSERT_TRUE(store.ok());
  const std::vector<std::string> texts = CanonicalVersions(/*seed=*/13, 5);
  for (const std::string& text : texts) {
    ASSERT_TRUE((*store)->Append(text).ok());
  }

  const uint64_t created_before = xml::Node::CreatedCount();
  CountingSink sink;
  ASSERT_TRUE((*store)->RetrieveTo(3, sink).ok());
  EXPECT_EQ(xml::Node::CreatedCount(), created_before)
      << "streaming retrieval must not materialize xml::Node objects";
  EXPECT_EQ(sink.bytes(), texts[2].size());
}

TEST(StreamingRetrieveTest, StreamsTheExactSerializedVersion) {
  // The streamed bytes equal serializing Archive::RetrieveVersion's tree,
  // for both frontier strategies.
  for (const char* backend : {"archive", "archive-weave"}) {
    auto store = StoreRegistry::Create(backend, OptionsWithSpec());
    ASSERT_TRUE(store.ok());
    core::Archive reference(
        MustSpec(), backend == std::string("archive-weave")
                        ? core::ArchiveOptions{{}, core::FrontierStrategy::kWeave}
                        : core::ArchiveOptions{});
    WordsVersions gen(/*seed=*/29);
    for (int v = 0; v < 6; ++v) {
      std::string text = gen.Next();
      ASSERT_TRUE((*store)->Append(text).ok());
      auto doc = xml::Parse(text);
      ASSERT_TRUE(doc.ok());
      ASSERT_TRUE(reference.AddVersion(**doc).ok());
    }
    for (Version v = 1; v <= 6; ++v) {
      StringSink sink;
      ASSERT_TRUE((*store)->RetrieveTo(v, sink).ok()) << backend;
      auto tree = reference.RetrieveVersion(v);
      ASSERT_TRUE(tree.ok());
      EXPECT_EQ(sink.data(), xml::Serialize(**tree)) << backend << " v" << v;
    }
  }
}

// --------------------------------------------- temporal queries / stats

TEST(TemporalQueryTest, HistoryAndDiffThroughTheStoreInterface) {
  auto store = StoreRegistry::Create("archive", OptionsWithSpec());
  ASSERT_TRUE(store.ok());
  // v1: entries 1, 2; v2: entry 2 gone, note of 1 changed; v3: 2 returns.
  auto entry = [](int id, const std::string& note) {
    return "<entry><id>" + std::to_string(id) + "</id><note>" + note +
           "</note></entry>";
  };
  ASSERT_TRUE(
      (*store)->Append("<db>" + entry(1, "a") + entry(2, "b") + "</db>").ok());
  ASSERT_TRUE((*store)->Append("<db>" + entry(1, "changed") + "</db>").ok());
  ASSERT_TRUE(
      (*store)
          ->Append("<db>" + entry(1, "changed") + entry(2, "b") + "</db>")
          .ok());

  auto history = (*store)->History(
      {{"db", {}}, {"entry", {{"id", "2"}}}});
  ASSERT_TRUE(history.ok()) << history.status().ToString();
  EXPECT_EQ(history->ToString(), "1,3");

  auto changes = (*store)->DiffVersions(1, 2);
  ASSERT_TRUE(changes.ok()) << changes.status().ToString();
  bool saw_delete = false, saw_change = false;
  for (const auto& change : *changes) {
    saw_delete |= change.kind == core::Change::Kind::kDeleted;
    saw_change |= change.kind == core::Change::Kind::kContentChanged;
  }
  EXPECT_TRUE(saw_delete);
  EXPECT_TRUE(saw_change);
}

TEST(TemporalQueryTest, IndexBackedHistoryMatchesScan) {
  StoreOptions indexed_options = OptionsWithSpec();
  indexed_options.use_index = true;
  auto indexed = StoreRegistry::Create("archive", std::move(indexed_options));
  auto plain = StoreRegistry::Create("archive", OptionsWithSpec());
  ASSERT_TRUE(indexed.ok() && plain.ok());
  const std::vector<std::string> texts = CanonicalVersions(/*seed=*/31, 6);
  for (const std::string& text : texts) {
    ASSERT_TRUE((*indexed)->Append(text).ok());
    ASSERT_TRUE((*plain)->Append(text).ok());
  }
  for (int id : {1, 2, 5, 11}) {
    std::vector<core::KeyStep> path = {
        {"db", {}}, {"entry", {{"id", std::to_string(id)}}}};
    auto a = (*indexed)->History(path);
    auto b = (*plain)->History(path);
    ASSERT_EQ(a.ok(), b.ok()) << "id " << id;
    if (a.ok()) {
      EXPECT_EQ(a->ToString(), b->ToString()) << "id " << id;
    }
  }
}

TEST(StoreStatsTest, CheckpointStoresReportSegmentsAndForcedCheckpoints) {
  for (const char* backend : {"checkpoint-archive", "checkpoint-diff"}) {
    auto store = StoreRegistry::Create(backend, OptionsWithSpec());  // k=3
    ASSERT_TRUE(store.ok());
    const std::vector<std::string> texts = CanonicalVersions(/*seed=*/17, 2);
    ASSERT_TRUE((*store)->Append(texts[0]).ok());
    EXPECT_EQ((*store)->Stats().checkpoint_segments, 1u) << backend;
    ASSERT_TRUE((*store)->Checkpoint().ok());
    ASSERT_TRUE((*store)->Append(texts[1]).ok());
    EXPECT_EQ((*store)->Stats().checkpoint_segments, 2u) << backend;
    for (Version v = 1; v <= 2; ++v) {
      EXPECT_TRUE((*store)->Retrieve(v).ok()) << backend << " v" << v;
    }
  }
}

TEST(StoreStatsTest, CompressedStoreShrinksStoredBytes) {
  StoreOptions options = OptionsWithSpec();
  options.inner = "full-copy";
  auto compressed = StoreRegistry::Create("compressed", std::move(options));
  auto raw = StoreRegistry::Create("full-copy");
  ASSERT_TRUE(compressed.ok() && raw.ok());
  const std::vector<std::string> texts = CanonicalVersions(/*seed=*/19, 6);
  for (const std::string& text : texts) {
    ASSERT_TRUE((*compressed)->Append(text).ok());
    ASSERT_TRUE((*raw)->Append(text).ok());
  }
  EXPECT_LT((*compressed)->ByteSize(), (*raw)->ByteSize());
  // Retrieval still goes through the inner store untouched.
  auto got = (*compressed)->Retrieve(2);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, texts[1]);
}

TEST(StoreStatsTest, ExtmemStoreFoldsInIoCounters) {
  auto store = StoreRegistry::Create("extmem", OptionsWithSpec());
  ASSERT_TRUE(store.ok());
  const std::vector<std::string> texts = CanonicalVersions(/*seed=*/37, 3);
  for (const std::string& text : texts) {
    ASSERT_TRUE((*store)->Append(text).ok());
  }
  StoreStats stats = (*store)->Stats();
  EXPECT_EQ(stats.versions, 3u);
  EXPECT_GT(stats.io.bytes_written, 0u);
  EXPECT_GT(stats.io.run_count, 0u);
}

// -------------------------------------------------------- v1 shims

TEST(VersionStoreShimTest, DeprecatedFactoriesStillWork) {
  std::vector<std::unique_ptr<VersionStore>> stores;
  stores.push_back(MakeArchiveStore(MustSpec()));
  stores.push_back(MakeIncrementalDiffStore());
  stores.push_back(MakeCumulativeDiffStore());
  stores.push_back(MakeFullCopyStore());
  const std::vector<std::string> texts = CanonicalVersions(/*seed=*/43, 4);
  for (auto& store : stores) {
    for (const std::string& text : texts) {
      ASSERT_TRUE(store->AddVersion(text).ok()) << store->name();
    }
    EXPECT_GT(store->ByteSize(), 0u) << store->name();
    for (Version v = 1; v <= texts.size(); ++v) {
      auto got = store->Retrieve(v);
      ASSERT_TRUE(got.ok()) << store->name();
      EXPECT_EQ(*got, texts[v - 1]) << store->name() << " v" << v;
    }
  }
}

}  // namespace
}  // namespace xarch
