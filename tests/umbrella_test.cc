// Compile-only check for the umbrella header: including just
// xarch/xarch.h must pull in every public API, in particular Store v2.

#include "xarch/xarch.h"

#include <gtest/gtest.h>

namespace {

TEST(UmbrellaTest, ExposesTheFullPublicApi) {
  // One symbol per include block, so a dropped include fails to compile.
  (void)sizeof(xarch::compress::XmlContainerCompressor);
  (void)sizeof(xarch::core::Archive);
  (void)sizeof(xarch::diff::IncrementalDiffRepo);
  (void)sizeof(xarch::extmem::IoStats);
  (void)sizeof(xarch::index::ProbeStats);
  (void)sizeof(xarch::keys::Key);
  (void)sizeof(xarch::VersionSet);
  (void)sizeof(xarch::CheckpointedArchive);
  (void)sizeof(xarch::StringSink);
  (void)sizeof(xarch::Store*);
  (void)sizeof(xarch::StoreRegistry);
  (void)sizeof(xarch::VersionStore*);
  (void)sizeof(xarch::xml::Node);
  EXPECT_NE(xarch::CapabilitiesToString(xarch::kTemporalQueries), "");
}

}  // namespace
