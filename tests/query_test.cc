// XAQL: parser round-trips, streaming evaluation over the archive plans,
// the generic fallback plan on every backend, EXPLAIN, probe accounting
// (indexed strictly cheaper than naive on XMark), and the stale-index
// regression.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/archive.h"
#include "core/changes.h"
#include "query/ast.h"
#include "query/parser.h"
#include "synth/xmark.h"
#include "xarch/store.h"
#include "xarch/store_registry.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xml/value.h"

namespace xarch {
namespace {

constexpr const char* kKeys = R"(
(/, (db, {}))
(/db, (entry, {id}))
(/db/entry, (note, {}))
)";

keys::KeySpecSet MustSpec(const char* text = kKeys) {
  auto spec = keys::ParseKeySpecSet(text);
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  return std::move(spec).value();
}

StoreOptions OptionsWithSpec(bool use_index = false) {
  StoreOptions options;
  options.spec = MustSpec();
  options.checkpoint_every = 2;
  options.use_index = use_index;
  return options;
}

/// The store-canonical form of a version (keyed siblings in fingerprint
/// order, default pretty serialization), so retrieval round-trips
/// byte-for-byte on every backend.
std::string Canonical(const std::string& text) {
  core::Archive archive(MustSpec());
  auto doc = xml::Parse(text);
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_TRUE(archive.AddVersion(**doc).ok());
  auto back = archive.RetrieveVersion(1);
  EXPECT_TRUE(back.ok());
  return xml::Serialize(**back);
}

std::string Entry(int id, const std::string& note) {
  return "<entry><id>" + std::to_string(id) + "</id><note>" + note +
         "</note></entry>";
}

/// Three deterministic versions: entry 2 disappears in v2 and returns in
/// v3, entry 1's note changes in v2, entry 3 appears in v2.
std::vector<std::string> FixtureVersions() {
  return {
      Canonical("<db>" + Entry(1, "alpha") + Entry(2, "beta") + "</db>"),
      Canonical("<db>" + Entry(1, "changed") + Entry(3, "gamma") + "</db>"),
      Canonical("<db>" + Entry(1, "changed") + Entry(2, "beta") +
                Entry(3, "gamma") + "</db>"),
  };
}

std::unique_ptr<Store> MakeStore(const std::string& backend,
                                 bool use_index = false) {
  auto store = StoreRegistry::Create(backend, OptionsWithSpec(use_index));
  EXPECT_TRUE(store.ok()) << backend << ": " << store.status().ToString();
  std::unique_ptr<Store> out = std::move(store).value();
  for (const std::string& text : FixtureVersions()) {
    EXPECT_TRUE(out->Append(text).ok()) << backend;
  }
  return out;
}

StatusOr<std::string> RunQuery(Store& store, const std::string& q) {
  StringSink sink;
  XARCH_RETURN_NOT_OK(store.Query(q, sink));
  return std::move(sink).Take();
}

// ------------------------------------------------------------- parsing

TEST(XaqlParserTest, RoundTripsCanonicalText) {
  const std::vector<std::string> queries = {
      "/db @ version 17",
      "/db/entry[id=\"2\"] @ version 3",
      "/db/entry[*] @ versions 3..9",
      "/site/people/person[id=\"person0\"]/name history",
      "/db/dept[name=\"finance\"]/emp[fn=\"John\", ln=\"Doe\"] history",
      "/db diff 3 9",
      "explain /db/entry[id=\"2\"] @ version 1",
      "/a/b[.=\"x\"] history",
      "/a/b[@id=\"i\"] @ version 1",
      "/a/b[Date/Month=\"Jan\"] @ version 2",
      "/a/b[k=\"quo\\\"te\\\\\"] @ version 1",
  };
  for (const std::string& q : queries) {
    auto ast = query::Parse(q);
    ASSERT_TRUE(ast.ok()) << q << ": " << ast.status().ToString();
    const std::string canonical = ast->ToString();
    auto again = query::Parse(canonical);
    ASSERT_TRUE(again.ok()) << canonical << ": "
                            << again.status().ToString();
    EXPECT_TRUE(*ast == *again) << q;
    EXPECT_EQ(canonical, again->ToString()) << q;
  }
}

TEST(XaqlParserTest, AcceptsFlexibleWhitespace) {
  auto a = query::Parse("/db/entry[ id = \"2\" ]   @   version   3");
  auto b = query::Parse("/db/entry[id=\"2\"] @ version 3");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(*a == *b);
}

TEST(XaqlParserTest, RejectsMalformedQueries) {
  const std::vector<std::string> bad = {
      "",                                  // no path
      "db @ version 1",                    // missing leading slash
      "/db",                               // missing temporal qualifier
      "/db @ version",                     // missing version number
      "/db @ versions 3",                  // missing range
      "/db @ versions 9..3",               // empty range
      "/db @ epoch 3",                     // unknown qualifier
      "/db/entry[id=2] @ version 1",       // unquoted value
      "/db/entry[id=\"2\" @ version 1",    // missing ]
      "/db/entry[id=\"2] @ version 1",     // unterminated string
      "/db history trailing",              // trailing junk
      "/db diff 1",                        // missing second version
      "/db diff 9 3",                      // reversed bounds (same as range)
      "/db $ version 1",                   // stray character
  };
  for (const std::string& q : bad) {
    auto ast = query::Parse(q);
    EXPECT_FALSE(ast.ok()) << "accepted: " << q;
    if (!ast.ok()) {
      EXPECT_EQ(ast.status().code(), StatusCode::kParseError) << q;
    }
  }
}

TEST(XaqlParserTest, DiffAndRangeValidateBoundsConsistently) {
  // Reversed bounds fail the same way for both temporal forms.
  auto bad_range = query::Parse("/db @ versions 9..3");
  auto bad_diff = query::Parse("/db diff 9 3");
  ASSERT_FALSE(bad_range.ok());
  ASSERT_FALSE(bad_diff.ok());
  EXPECT_EQ(bad_range.status().code(), StatusCode::kParseError);
  EXPECT_EQ(bad_diff.status().code(), StatusCode::kParseError);
  EXPECT_NE(bad_diff.status().ToString().find("out of order"),
            std::string::npos);

  // Equal bounds are legal for both: a one-version range, an empty diff.
  auto same_range = query::Parse("/db @ versions 3..3");
  ASSERT_TRUE(same_range.ok()) << same_range.status().ToString();
  auto same_diff = query::Parse("/db diff 3 3");
  ASSERT_TRUE(same_diff.ok()) << same_diff.status().ToString();
  EXPECT_EQ(same_diff->temporal.from, 3u);
  EXPECT_EQ(same_diff->temporal.to, 3u);

  // An ordinary ordered diff still parses.
  EXPECT_TRUE(query::Parse("/db diff 3 9").ok());
}

TEST(XaqlParserTest, DiffOfAVersionWithItselfIsEmpty) {
  auto store = MakeStore("archive");
  auto out = RunQuery(*store, "/db diff 2 2");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(*out, "");
}

// -------------------------------------------------- snapshots (archive)

TEST(XaqlSnapshotTest, WholeDocumentQueryMatchesStreamingRetrieve) {
  auto store = MakeStore("archive");
  for (Version v = 1; v <= 3; ++v) {
    auto got = RunQuery(*store, "/db @ version " + std::to_string(v));
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    StringSink reference;
    ASSERT_TRUE(store->RetrieveTo(v, reference).ok());
    EXPECT_EQ(*got, reference.data()) << "v" << v;
  }
}

TEST(XaqlSnapshotTest, StreamsWithoutMaterializingNodes) {
  for (bool use_index : {false, true}) {
    auto store = MakeStore("archive", use_index);
    CountingSink sink;
    // Warm up (the first indexed query builds the index).
    ASSERT_TRUE(store->Query("/db @ version 1", sink).ok());
    const uint64_t created_before = xml::Node::CreatedCount();
    ASSERT_TRUE(store->Query("/db/entry[id=\"2\"] @ version 3", sink).ok());
    ASSERT_TRUE(store->Query("/db @ version 2", sink).ok());
    EXPECT_EQ(xml::Node::CreatedCount(), created_before)
        << "archive-plan queries must not materialize xml::Node objects "
           "(use_index=" << use_index << ")";
  }
}

TEST(XaqlSnapshotTest, KeyedSubtreeMatchesReconstructedSubtree) {
  auto store = MakeStore("archive");
  auto got = RunQuery(*store, "/db/entry[id=\"2\"] @ version 1");
  ASSERT_TRUE(got.ok()) << got.status().ToString();

  // Reference: the matching subtree of the reconstructed version.
  core::Archive reference(MustSpec());
  for (const std::string& text : FixtureVersions()) {
    auto doc = xml::Parse(text);
    ASSERT_TRUE(doc.ok());
    ASSERT_TRUE(reference.AddVersion(**doc).ok());
  }
  auto v1 = reference.RetrieveVersion(1);
  ASSERT_TRUE(v1.ok());
  const xml::Node* match = nullptr;
  for (const auto& child : (*v1)->children()) {
    if (child->is_element() && child->tag() == "entry" &&
        child->FindChild("id")->TextContent() == "2") {
      match = child.get();
    }
  }
  ASSERT_NE(match, nullptr);
  std::string expected;
  xml::SerializeAppend(*match, xml::SerializeOptions{}, 0, &expected);
  EXPECT_EQ(*got, expected);
}

TEST(XaqlSnapshotTest, WildcardStreamsEveryActiveSibling) {
  auto store = MakeStore("archive");
  auto all = RunQuery(*store, "/db/entry[*] @ version 3");
  ASSERT_TRUE(all.ok());
  std::string expected;
  for (int id : {1, 2, 3}) {  // archive child order == insertion order here
    auto one = RunQuery(*store, "/db/entry[id=\"" + std::to_string(id) +
                                    "\"] @ version 3");
    ASSERT_TRUE(one.ok());
    expected += *one;
  }
  // The wildcard streams the same subtrees, in archive child order.
  EXPECT_EQ(all->size(), expected.size());
  for (int id : {1, 2, 3}) {
    auto one = RunQuery(*store, "/db/entry[id=\"" + std::to_string(id) +
                                    "\"] @ version 3");
    EXPECT_NE(all->find(*one), std::string::npos) << "id " << id;
  }
}

TEST(XaqlSnapshotTest, MissingElementIsNotFound) {
  auto store = MakeStore("archive");
  auto got = RunQuery(*store, "/db/entry[id=\"99\"] @ version 1");
  EXPECT_EQ(got.status().code(), StatusCode::kNotFound);
  // Element exists in the archive but not at the requested version.
  got = RunQuery(*store, "/db/entry[id=\"2\"] @ version 2");
  EXPECT_EQ(got.status().code(), StatusCode::kNotFound);
  // Version out of range.
  got = RunQuery(*store, "/db @ version 9");
  EXPECT_EQ(got.status().code(), StatusCode::kNotFound);
}

TEST(XaqlSnapshotTest, DescendingBelowFrontierIsAnError) {
  auto store = MakeStore("archive");
  auto got = RunQuery(*store, "/db/entry[id=\"1\"]/note/deeper @ version 1");
  EXPECT_EQ(got.status().code(), StatusCode::kInvalidArgument);
}

// ----------------------------------------------------------- ranges

TEST(XaqlRangeTest, WrapsEachVersionAndMarksAbsence) {
  auto store = MakeStore("archive");
  auto got = RunQuery(*store, "/db/entry[id=\"3\"] @ versions 1..3");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  auto v2 = RunQuery(*store, "/db/entry[id=\"3\"] @ version 2");
  auto v3 = RunQuery(*store, "/db/entry[id=\"3\"] @ version 3");
  ASSERT_TRUE(v2.ok() && v3.ok());
  std::string expected = "<version n=\"1\"/>\n";
  expected += "<version n=\"2\">\n";
  // Subtrees sit one level deeper inside the wrapper.
  std::string indented2 = "  " + *v2;
  size_t pos = 0;
  while ((pos = indented2.find('\n', pos)) != std::string::npos &&
         pos + 1 < indented2.size()) {
    indented2.insert(pos + 1, "  ");
    pos += 3;
  }
  expected += indented2;
  expected += "</version>\n<version n=\"3\">\n";
  std::string indented3 = "  " + *v3;
  pos = 0;
  while ((pos = indented3.find('\n', pos)) != std::string::npos &&
         pos + 1 < indented3.size()) {
    indented3.insert(pos + 1, "  ");
    pos += 3;
  }
  expected += indented3;
  expected += "</version>\n";
  EXPECT_EQ(*got, expected);
}

TEST(XaqlRangeTest, NeverExistingPathStreamsEmptyWrappers) {
  auto store = MakeStore("archive");
  auto got = RunQuery(*store, "/db/entry[id=\"99\"] @ versions 1..2");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, "<version n=\"1\"/>\n<version n=\"2\"/>\n");
}

TEST(XaqlRangeTest, OutOfBoundsRangeIsInvalid) {
  auto store = MakeStore("archive");
  EXPECT_EQ(RunQuery(*store, "/db @ versions 0..2").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(RunQuery(*store, "/db @ versions 2..9").status().code(),
            StatusCode::kInvalidArgument);
}

// ----------------------------------------------------------- history

TEST(XaqlHistoryTest, ReportsTheElementsVersionSet) {
  auto store = MakeStore("archive");
  auto got = RunQuery(*store, "/db/entry[id=\"2\"] history");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, "/db/entry{id=2}: 1,3\n");
  got = RunQuery(*store, "/db history");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "/db: 1-3\n");
}

TEST(XaqlHistoryTest, BareStepAddressesOnlyTheUnkeyedElement) {
  // A bare step in `history` has Store::History's exact semantics: it
  // never silently enumerates keyed siblings (that's what [*] is for),
  // so archive and generic plans agree on every backend.
  for (const char* backend : {"archive", "checkpoint-archive"}) {
    auto store = MakeStore(backend);
    auto got = RunQuery(*store, "/db/entry history");
    EXPECT_EQ(got.status().code(), StatusCode::kNotFound) << backend;
  }
  // The spec-less full scan cannot know keys; an ambiguous bare fan-out
  // fails loudly instead of merging histories.
  auto full_copy = MakeStore("full-copy");
  auto got = RunQuery(*full_copy, "/db/entry history");
  EXPECT_EQ(got.status().code(), StatusCode::kInvalidArgument);
}

TEST(XaqlHistoryTest, WildcardEmitsOneLinePerElement) {
  auto store = MakeStore("archive");
  auto got = RunQuery(*store, "/db/entry[*] history");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_NE(got->find("/db/entry{id=1}: 1-3\n"), std::string::npos);
  EXPECT_NE(got->find("/db/entry{id=2}: 1,3\n"), std::string::npos);
  EXPECT_NE(got->find("/db/entry{id=3}: 2-3\n"), std::string::npos);
}

// -------------------------------------------------------------- diff

TEST(XaqlDiffTest, MatchesDescribeChangesAndFiltersByPath) {
  auto store = MakeStore("archive");
  // Reference change list over the same archive.
  core::Archive reference(MustSpec());
  for (const std::string& text : FixtureVersions()) {
    auto doc = xml::Parse(text);
    ASSERT_TRUE(doc.ok());
    ASSERT_TRUE(reference.AddVersion(**doc).ok());
  }
  auto changes = core::DescribeChanges(reference, 1, 2);
  ASSERT_TRUE(changes.ok());

  auto whole = RunQuery(*store, "/db diff 1 2");
  ASSERT_TRUE(whole.ok()) << whole.status().ToString();
  EXPECT_EQ(*whole, core::FormatChanges(*changes));

  auto entry2 = RunQuery(*store, "/db/entry[id=\"2\"] diff 1 2");
  ASSERT_TRUE(entry2.ok());
  EXPECT_EQ(*entry2, "- /db/entry{id=2}\n");

  // A path that never changed (and never existed) filters to nothing.
  auto none = RunQuery(*store, "/db/entry[id=\"99\"] diff 1 2");
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(*none, "");
}

// -------------------------------------------- every backend, one engine

class XaqlBackendTest : public ::testing::TestWithParam<std::string> {};

TEST_P(XaqlBackendTest, AnswersQueriesOrFailsHonestly) {
  const std::string& backend = GetParam();
  auto reference = MakeStore("archive");
  auto store = MakeStore(backend);
  ASSERT_TRUE(store->Has(kQuery)) << backend;

  // Snapshot: byte-identical to the archive plan on canonical input
  // (extmem reorders siblings by plain label; compare values there).
  auto expected = RunQuery(*reference, "/db/entry[id=\"1\"] @ version 2");
  auto got = RunQuery(*store, "/db/entry[id=\"1\"] @ version 2");
  ASSERT_TRUE(got.ok()) << backend << ": " << got.status().ToString();
  if (backend == "extmem") {
    auto a = xml::Parse(*got);
    auto b = xml::Parse(*expected);
    ASSERT_TRUE(a.ok() && b.ok()) << backend;
    EXPECT_TRUE(xml::ValueEqual(**a, **b)) << backend;
  } else {
    EXPECT_EQ(*got, *expected) << backend;
  }

  // Missing elements are NotFound everywhere.
  EXPECT_EQ(
      RunQuery(*store, "/db/entry[id=\"99\"] @ version 1").status().code(),
      StatusCode::kNotFound)
      << backend;

  // History: the native path when temporal queries are advertised, the
  // per-version full scan otherwise — same answer either way.
  auto history = RunQuery(*store, "/db/entry[id=\"2\"] history");
  ASSERT_TRUE(history.ok()) << backend << ": " << history.status().ToString();
  EXPECT_EQ(*history, "/db/entry{id=2}: 1,3\n") << backend;

  // Diff needs key-based change tracking.
  auto diff = RunQuery(*store, "/db diff 1 2");
  if (store->Has(kTemporalQueries)) {
    ASSERT_TRUE(diff.ok()) << backend << ": " << diff.status().ToString();
    EXPECT_EQ(*diff, *RunQuery(*reference, "/db diff 1 2")) << backend;
  } else {
    EXPECT_EQ(diff.status().code(), StatusCode::kUnimplemented) << backend;
  }

  // Counters accumulated.
  EXPECT_GE(store->Stats().queries, 4u) << backend;
}

std::vector<std::string> RegisteredBackends() {
  std::vector<std::string> names;
  for (const auto* entry : StoreRegistry::Global().List()) {
    names.push_back(entry->name);
  }
  return names;
}

INSTANTIATE_TEST_SUITE_P(AllBackends, XaqlBackendTest,
                         ::testing::ValuesIn(RegisteredBackends()),
                         [](const auto& info) {
                           std::string name = info.param;
                           std::replace(name.begin(), name.end(), '-', '_');
                           return name;
                         });

TEST(XaqlCapabilityTest, UnadvertisedQueryIsUnimplemented) {
  class NullStore final : public Store {
   public:
    std::string name() const override { return "null"; }
    Capabilities capabilities() const override { return 0; }

   protected:
    Status AppendImpl(std::string_view) override { return Status::OK(); }
    StatusOr<std::string> RetrieveImpl(Version) override {
      return Status::NotFound("empty");
    }
    Version VersionCountImpl() const override { return 0; }
    std::string StoredBytesImpl() const override { return ""; }
    StoreStats BackendStats() const override { return StoreStats{}; }
  };
  NullStore store;
  StringSink sink;
  EXPECT_EQ(store.Query("/db @ version 1", sink).code(),
            StatusCode::kUnimplemented);
}

TEST(XaqlGenericTest, WildcardHistoryNeedsAnArchiveBackend) {
  auto store = MakeStore("full-copy");
  EXPECT_EQ(RunQuery(*store, "/db/entry[*] history").status().code(),
            StatusCode::kInvalidArgument);
}

// ------------------------------------- indexed vs naive (XMark, Sec. 7)

TEST(XaqlIndexTest, IndexedEvaluationProbesStrictlyFewerNodesOnXMark) {
  synth::XMarkGenerator::Options options;
  options.items = 32;
  options.people = 60;
  options.open_auctions = 32;
  synth::XMarkGenerator gen(options);
  // Enough churn that version 1 becomes a small fraction of the merged
  // hierarchy — the regime where timestamp trees pay off (Sec. 7.1).
  std::vector<std::string> versions;
  for (int v = 0; v < 40; ++v) {
    versions.push_back(xml::Serialize(*gen.Current()));
    gen.MutateRandom(30.0);
  }
  auto make = [&](bool use_index) {
    StoreOptions store_options;
    auto spec = keys::ParseKeySpecSet(synth::XMarkGenerator::KeySpecText());
    EXPECT_TRUE(spec.ok());
    store_options.spec = std::move(spec).value();
    store_options.use_index = use_index;
    auto store = StoreRegistry::Create("archive", std::move(store_options));
    EXPECT_TRUE(store.ok());
    std::vector<std::string_view> views(versions.begin(), versions.end());
    EXPECT_TRUE((*store)->AppendBatch(views).ok());
    return std::move(store).value();
  };
  auto indexed = make(true);
  auto naive = make(false);

  // Retrieving the oldest version touches a small fraction of the merged
  // hierarchy: the timestamp trees must pay strictly fewer probes than
  // the children a full scan inspects — with byte-identical output.
  const std::string q = "/site @ version 1";
  auto a = RunQuery(*indexed, q);
  auto b = RunQuery(*naive, q);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(*a, *b);
  EXPECT_GT(a->size(), 0u);

  StoreStats indexed_stats = indexed->Stats();
  StoreStats naive_stats = naive->Stats();
  EXPECT_GT(indexed_stats.query_tree_probes, 0u);
  // The naive Sec. 7.1 retrieval scans the whole archive sequentially
  // (on disk nothing can be skipped): its cost is the full node count,
  // exactly as bench_retrieval_index reports it. Indexed evaluation must
  // probe strictly fewer nodes.
  EXPECT_LT(indexed_stats.query_tree_probes, indexed_stats.node_count)
      << "indexed evaluation must probe strictly fewer nodes than the "
         "naive full scan";
  // The one-pass accounting agrees across the two runs: the indexed run
  // also counts what a stamp-checking scan would have inspected at the
  // same nodes.
  EXPECT_EQ(indexed_stats.query_naive_probes, naive_stats.query_naive_probes);
  EXPECT_EQ(naive_stats.query_tree_probes, 0u);
}

// ------------------------------------------------------------ explain

TEST(XaqlExplainTest, ReportsPlanAndProbesWithoutResults) {
  auto store = MakeStore("archive", /*use_index=*/true);
  auto report = RunQuery(*store, "explain /db/entry[id=\"2\"] @ version 1");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->rfind("XAQL EXPLAIN", 0), 0u) << *report;
  EXPECT_NE(report->find("access: archive-indexed"), std::string::npos);
  EXPECT_NE(report->find("sorted-key binary search"), std::string::npos);
  EXPECT_NE(report->find("tree probes:"), std::string::npos);
  EXPECT_NE(report->find("naive probes:"), std::string::npos);
  // The results themselves are counted, not streamed.
  EXPECT_EQ(report->find("<entry"), std::string::npos);

  auto generic = MakeStore("full-copy");
  auto generic_report =
      RunQuery(*generic, "explain /db/entry[id=\"2\"] @ version 1");
  ASSERT_TRUE(generic_report.ok());
  EXPECT_NE(generic_report->find("access: store-generic"), std::string::npos);
}

// ----------------------------------------------- stale-index regression

TEST(XaqlStaleIndexTest, IngestAfterIndexBuildInvalidatesLazily) {
  auto store = MakeStore("archive", /*use_index=*/true);
  // Force an index build.
  auto before = RunQuery(*store, "/db/entry[id=\"2\"] history");
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(*before, "/db/entry{id=2}: 1,3\n");

  // Ingest after the build: one Append, one AppendBatch.
  ASSERT_TRUE(
      store
          ->Append(Canonical("<db>" + Entry(2, "beta") + Entry(4, "delta") +
                             "</db>"))
          .ok());
  const std::string v5 =
      Canonical("<db>" + Entry(2, "beta2") + Entry(4, "delta") + "</db>");
  std::vector<std::string_view> batch = {v5};
  ASSERT_TRUE(store->AppendBatch(batch).ok());

  // Queries must see the new versions — a stale index would still answer
  // "1,3" and know nothing of version 5.
  auto history = RunQuery(*store, "/db/entry[id=\"2\"] history");
  ASSERT_TRUE(history.ok()) << history.status().ToString();
  EXPECT_EQ(*history, "/db/entry{id=2}: 1,3-5\n");
  auto snapshot = RunQuery(*store, "/db/entry[id=\"4\"] @ version 5");
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  EXPECT_NE(snapshot->find("delta"), std::string::npos);
  // And History() through the plain Store interface agrees.
  auto direct = store->History({{"db", {}}, {"entry", {{"id", "2"}}}});
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(direct->ToString(), "1,3-5");
}

// -------------------------------------------------------- stats folding

TEST(XaqlStatsTest, QueryCountersFoldIntoStats) {
  auto store = MakeStore("archive", /*use_index=*/true);
  EXPECT_EQ(store->Stats().queries, 0u);
  ASSERT_TRUE(RunQuery(*store, "/db @ version 1").ok());
  ASSERT_TRUE(RunQuery(*store, "/db/entry[id=\"1\"] history").ok());
  StoreStats stats = store->Stats();
  EXPECT_EQ(stats.queries, 2u);
  EXPECT_GT(stats.query_naive_probes, 0u);
  EXPECT_GT(stats.query_tree_probes, 0u);
  EXPECT_GT(stats.query_comparisons, 0u);
  // Backend counters are still there.
  EXPECT_EQ(stats.versions, 3u);
  EXPECT_GT(stats.node_count, 0u);
}

TEST(XaqlStatsTest, CompressedWrapperDelegatesQueries) {
  StoreOptions options = OptionsWithSpec();
  options.inner = "archive";
  auto store = StoreRegistry::Create("compressed", std::move(options));
  ASSERT_TRUE(store.ok());
  for (const std::string& text : FixtureVersions()) {
    ASSERT_TRUE((*store)->Append(text).ok());
  }
  auto got = RunQuery(**store, "/db/entry[id=\"2\"] history");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, "/db/entry{id=2}: 1,3\n");
  EXPECT_EQ((*store)->Stats().queries, 1u);  // counted on the inner store
}

}  // namespace
}  // namespace xarch
