// Property-based tests over randomly generated XML trees and version
// histories, checking the invariants DESIGN.md Sec. 4 lists.

#include <gtest/gtest.h>

#include <map>

#include "core/archive.h"
#include "keys/key_spec.h"
#include "util/random.h"
#include "xml/canonical.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xml/value.h"

namespace xarch {
namespace {

/// Random XML tree with text, attributes, and nesting.
xml::NodePtr RandomTree(Rng& rng, int max_depth) {
  if (max_depth == 0 || rng.Chance(0.3)) {
    return xml::Node::Text(rng.Word(1, 8));
  }
  xml::NodePtr elem = xml::Node::Element(rng.Word(1, 4));
  size_t attrs = rng.Uniform(0, 2);
  for (size_t i = 0; i < attrs; ++i) {
    elem->SetAttr(rng.Word(1, 3), rng.Word(0, 5));
  }
  size_t children = rng.Uniform(0, 4);
  for (size_t i = 0; i < children; ++i) {
    elem->AddChild(RandomTree(rng, max_depth - 1));
  }
  return elem;
}

/// Random *mutation* of a tree: returns a copy with one small change, or
/// an identical clone.
xml::NodePtr MaybeMutate(const xml::Node& tree, Rng& rng) {
  xml::NodePtr copy = tree.Clone();
  if (rng.Chance(0.5)) return copy;
  // Find a random node and tweak it.
  std::vector<xml::Node*> nodes = {copy.get()};
  for (size_t i = 0; i < nodes.size(); ++i) {
    for (const auto& c : nodes[i]->children()) nodes.push_back(c.get());
  }
  xml::Node* victim = nodes[rng.Uniform(0, nodes.size() - 1)];
  if (victim->is_text()) {
    victim->set_text(victim->text() + "!");
  } else if (rng.Chance(0.5)) {
    victim->SetAttr("mut", "1");
  } else {
    victim->AddText("mut");
  }
  return copy;
}

class TreePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(TreePropertyTest, CanonicalEqualIffValueEqual) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 60; ++trial) {
    xml::NodePtr a = RandomTree(rng, 4);
    xml::NodePtr b = MaybeMutate(*a, rng);
    bool value_equal = xml::ValueEqual(*a, *b);
    bool canon_equal = xml::Canonicalize(*a) == xml::Canonicalize(*b);
    EXPECT_EQ(value_equal, canon_equal);
    bool fp_equal =
        xml::Fingerprint(*a).ToHex() == xml::Fingerprint(*b).ToHex();
    if (value_equal) EXPECT_TRUE(fp_equal);
  }
}

TEST_P(TreePropertyTest, SerializeParseRoundTrip) {
  Rng rng(GetParam() + 100);
  for (int trial = 0; trial < 60; ++trial) {
    xml::NodePtr tree = RandomTree(rng, 4);
    if (tree->is_text()) continue;  // documents need an element root
    // Compact mode only: pretty-printing is whitespace-lossy for mixed
    // content (text interleaved with elements), which random trees have
    // but keyed documents above the frontier never do.
    xml::SerializeOptions options;
    options.pretty = false;
    std::string text = xml::Serialize(*tree, options);
    auto parsed = xml::Parse(text);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << text;
    // Adjacent text children merge on the first parse; after that the
    // round trip must be exact.
    std::string again = xml::Serialize(**parsed, options);
    auto reparsed = xml::Parse(again);
    ASSERT_TRUE(reparsed.ok());
    EXPECT_TRUE(xml::ValueEqual(**parsed, **reparsed)) << text;
    EXPECT_EQ(text, again);
  }
}

TEST_P(TreePropertyTest, ValueCompareIsTotalOrder) {
  Rng rng(GetParam() + 200);
  std::vector<xml::NodePtr> trees;
  for (int i = 0; i < 12; ++i) trees.push_back(RandomTree(rng, 3));
  for (const auto& a : trees) {
    EXPECT_EQ(xml::ValueCompare(*a, *a), 0);
    for (const auto& b : trees) {
      int ab = xml::ValueCompare(*a, *b);
      int ba = xml::ValueCompare(*b, *a);
      EXPECT_EQ(ab, -ba);
      for (const auto& c : trees) {
        // Transitivity: a<=b && b<=c => a<=c.
        if (ab <= 0 && xml::ValueCompare(*b, *c) <= 0) {
          EXPECT_LE(xml::ValueCompare(*a, *c), 0);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreePropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

// ------------------------------------------------ stored-once invariant

constexpr const char* kKeys = R"(
(/, (db, {}))
(/db, (rec, {id}))
(/db/rec, (val, {}))
)";

class StoredOnceTest : public ::testing::TestWithParam<int> {};

TEST_P(StoredOnceTest, EachElementStoredOnceWithExactTimestamp) {
  Rng rng(GetParam());
  auto spec = keys::ParseKeySpecSet(kKeys);
  ASSERT_TRUE(spec.ok());
  core::Archive archive(std::move(*spec));
  // Ground truth: id -> set of versions it exists in (+ value per version).
  std::map<int, VersionSet> truth;
  std::map<int, std::string> current_value;
  std::map<int, bool> alive;
  for (Version v = 1; v <= 20; ++v) {
    // Mutate the world.
    for (int id = 0; id < 8; ++id) {
      double r = rng.NextDouble();
      if (r < 0.15) {
        alive[id] = !alive[id];
        if (alive[id]) current_value[id] = rng.Word(2, 5);
      } else if (r < 0.3 && alive[id]) {
        current_value[id] = rng.Word(2, 5);
      } else if (!alive.count(id)) {
        alive[id] = rng.Chance(0.7);
        current_value[id] = rng.Word(2, 5);
      }
    }
    xml::NodePtr doc = xml::Node::Element("db");
    for (int id = 0; id < 8; ++id) {
      if (!alive[id]) continue;
      truth[id].Add(v);
      xml::Node* rec = doc->AddElement("rec");
      rec->AddElementWithText("id", std::to_string(id));
      rec->AddElementWithText("val", current_value[id]);
    }
    Status st = archive.AddVersion(*doc);
    ASSERT_TRUE(st.ok()) << st.ToString();
    ASSERT_TRUE(archive.Check().ok());
  }
  // Each rec appears exactly once in the archive with exactly its truth
  // timestamp.
  const core::ArchiveNode* db = archive.root().children.empty()
                                    ? nullptr
                                    : archive.root().children[0].get();
  ASSERT_NE(db, nullptr);
  std::map<int, int> seen;
  for (const auto& child : db->children) {
    if (child->label.tag != "rec") continue;
    int id = std::stoi(child->label.ToString().substr(
        child->label.ToString().find('=') + 1));
    ++seen[id];
    VersionSet effective = child->EffectiveStamp(*archive.root().stamp);
    EXPECT_EQ(effective.ToString(), truth[id].ToString()) << "rec " << id;
  }
  for (const auto& [id, stamp] : truth) {
    if (!stamp.empty()) {
      EXPECT_EQ(seen[id], 1) << "rec " << id << " stored " << seen[id]
                             << " times";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StoredOnceTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace xarch
