#include <gtest/gtest.h>

#include "keys/annotate.h"
#include "keys/key_spec.h"
#include "keys/label.h"
#include "xml/parser.h"

namespace xarch::keys {
namespace {

// The company-database keys of Sec. 3.
constexpr const char* kCompanyKeys = R"(
(/, (db, {}))
(/db, (dept, {name}))
(/db/dept, (emp, {fn, ln}))
(/db/dept/emp, (sal, {}))
(/db/dept/emp, (tel, {.}))
)";

xml::NodePtr MustParseXml(std::string_view text) {
  auto result = xml::Parse(text);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

KeySpecSet MustParseSpec(std::string_view text) {
  auto result = ParseKeySpecSet(text);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

// ----------------------------------------------------------- Key parsing

TEST(KeySpecParseTest, ParsesCompanyKeys) {
  auto keys = ParseKeySpecText(kCompanyKeys);
  ASSERT_TRUE(keys.ok()) << keys.status().ToString();
  ASSERT_EQ(keys->size(), 5u);
  EXPECT_EQ((*keys)[0].ToString(), "(/, (db, {}))");
  EXPECT_EQ((*keys)[1].ToString(), "(/db, (dept, {name}))");
  EXPECT_EQ((*keys)[2].ToString(), "(/db/dept, (emp, {fn, ln}))");
  EXPECT_EQ((*keys)[4].key_paths.size(), 1u);
  EXPECT_TRUE((*keys)[4].key_paths[0].empty());
}

TEST(KeySpecParseTest, ParsesMultiStepKeyPaths) {
  auto keys = ParseKeySpecText(
      "(/ROOT/Record, (Contributors, {Name, CNtype, Date/Month, Date/Day}))");
  ASSERT_TRUE(keys.ok());
  ASSERT_EQ((*keys)[0].key_paths.size(), 4u);
  EXPECT_EQ((*keys)[0].key_paths[2].ToString(), "Date/Month");
}

TEST(KeySpecParseTest, ParsesEmptyKeyPathForms) {
  auto keys = ParseKeySpecText(
      "(/a, (b, {\\e}))\n(/a, (c, {}))\n# comment\n\n(/a, (d, {.}))");
  ASSERT_TRUE(keys.ok());
  ASSERT_EQ(keys->size(), 3u);
  ASSERT_EQ((*keys)[0].key_paths.size(), 1u);
  EXPECT_TRUE((*keys)[0].key_paths[0].empty());
  EXPECT_TRUE((*keys)[1].key_paths.empty());
  ASSERT_EQ((*keys)[2].key_paths.size(), 1u);
  EXPECT_TRUE((*keys)[2].key_paths[0].empty());
}

TEST(KeySpecParseTest, RejectsMalformed) {
  EXPECT_FALSE(ParseKeySpecText("(/a, b, {})").ok());
  EXPECT_FALSE(ParseKeySpecText("(a, (b, {}))").ok());      // relative context
  EXPECT_FALSE(ParseKeySpecText("(/a, (/b, {}))").ok());    // absolute target
  EXPECT_FALSE(ParseKeySpecText("(/a, (b, {c}")
                   .ok());                                   // unbalanced
}

TEST(KeySpecSetTest, RejectsDuplicateTargets) {
  EXPECT_FALSE(
      ParseKeySpecSet("(/a, (b, {}))\n(/a, (b, {c}))").ok());
}

TEST(KeySpecSetTest, LookupAndFrontier) {
  KeySpecSet spec = MustParseSpec(kCompanyKeys);
  EXPECT_NE(spec.Lookup({"db"}), nullptr);
  EXPECT_NE(spec.Lookup({"db", "dept"}), nullptr);
  EXPECT_NE(spec.Lookup({"db", "dept", "emp"}), nullptr);
  EXPECT_EQ(spec.Lookup({"db", "nosuch"}), nullptr);
  // Implied keys make name/fn/ln keyed.
  EXPECT_NE(spec.Lookup({"db", "dept", "name"}), nullptr);
  EXPECT_NE(spec.Lookup({"db", "dept", "emp", "fn"}), nullptr);
  // Frontier paths of Sec. 3: name, fn, ln, sal, tel.
  EXPECT_TRUE(spec.IsFrontier({"db", "dept", "name"}));
  EXPECT_TRUE(spec.IsFrontier({"db", "dept", "emp", "fn"}));
  EXPECT_TRUE(spec.IsFrontier({"db", "dept", "emp", "sal"}));
  EXPECT_TRUE(spec.IsFrontier({"db", "dept", "emp", "tel"}));
  EXPECT_FALSE(spec.IsFrontier({"db", "dept", "emp"}));
  EXPECT_FALSE(spec.IsFrontier({"db"}));
}

TEST(KeySpecSetTest, ImpliedKeysAddedForPrefixes) {
  KeySpecSet spec = MustParseSpec(
      "(/r, (c, {Date/Month, Date/Day}))");
  // Both Date and Date/Month get implied keys.
  EXPECT_NE(spec.Lookup({"r", "c", "Date"}), nullptr);
  EXPECT_NE(spec.Lookup({"r", "c", "Date", "Month"}), nullptr);
  EXPECT_TRUE(spec.IsFrontier({"r", "c", "Date", "Month"}));
  EXPECT_FALSE(spec.IsFrontier({"r", "c", "Date"}));
}

TEST(KeySpecSetTest, WildcardStepMatches) {
  KeySpecSet spec = MustParseSpec(
      "(/site, (regions, {}))\n"
      "(/site/regions, (africa, {}))\n"
      "(/site/regions, (asia, {}))\n"
      "(/site/regions/_, (item, {id}))");
  EXPECT_NE(spec.Lookup({"site", "regions", "africa", "item"}), nullptr);
  EXPECT_NE(spec.Lookup({"site", "regions", "asia", "item"}), nullptr);
  EXPECT_EQ(spec.Lookup({"site", "item"}), nullptr);
}

// ----------------------------------------------------------------- Label

TEST(LabelTest, CompareOrdersByTagThenArityThenPairs) {
  Label a{"emp", {{"fn", "TJane"}, {"ln", "TSmith"}}, 0};
  Label b{"emp", {{"fn", "TJohn"}, {"ln", "TDoe"}}, 0};
  Label c{"emp", {{"fn", "TJane"}}, 0};
  Label d{"dept", {}, 0};
  EXPECT_LT(a.Compare(b), 0);
  EXPECT_GT(b.Compare(a), 0);
  EXPECT_LT(c.Compare(a), 0);  // fewer parts first
  EXPECT_LT(d.Compare(a), 0);  // tag first
  EXPECT_EQ(a.Compare(a), 0);
}

TEST(LabelTest, FingerprintEqualForEqualLabels) {
  Label a{"emp", {{"fn", "TJohn"}, {"ln", "TDoe"}}, 0};
  Label b{"emp", {{"fn", "TJohn"}, {"ln", "TDoe"}}, 0};
  a.ComputeFingerprint(64);
  b.ComputeFingerprint(64);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  Label c = a;
  c.parts[0].value = "TJane";
  c.ComputeFingerprint(64);
  EXPECT_NE(a.fingerprint, c.fingerprint);
}

TEST(LabelTest, TruncatedFingerprintStillOrdersConsistently) {
  Label a{"x", {{"k", "T1"}}, 0};
  Label b{"x", {{"k", "T2"}}, 0};
  a.ComputeFingerprint(1);
  b.ComputeFingerprint(1);
  // With 1-bit fingerprints collisions are likely; OrderBefore must still
  // be a strict weak ordering via the label tiebreak.
  bool ab = a.OrderBefore(b);
  bool ba = b.OrderBefore(a);
  EXPECT_NE(ab, ba);
}

TEST(LabelTest, ToStringRendersKeyValues) {
  Label a{"emp", {{"fn", "TJohn"}, {"ln", "TDoe"}}, 0};
  EXPECT_EQ(a.ToString(), "emp{fn=John, ln=Doe}");
  Label b{"dept", {}, 0};
  EXPECT_EQ(b.ToString(), "dept");
}

// -------------------------------------------------------------- Annotate

constexpr const char* kVersion4 = R"(
<db>
 <dept>
  <name>finance</name>
  <emp><fn>John</fn><ln>Doe</ln><sal>95K</sal><tel>123-4567</tel></emp>
  <emp><fn>Jane</fn><ln>Smith</ln><sal>95K</sal><tel>123-6789</tel>
       <tel>112-3456</tel></emp>
 </dept>
</db>
)";

TEST(AnnotateTest, AnnotatesCompanyVersion) {
  KeySpecSet spec = MustParseSpec(kCompanyKeys);
  xml::NodePtr doc = MustParseXml(kVersion4);
  auto keyed = AnnotateKeys(*doc, spec);
  ASSERT_TRUE(keyed.ok()) << keyed.status().ToString();
  EXPECT_EQ(keyed->label.tag, "db");
  EXPECT_FALSE(keyed->is_frontier);
  ASSERT_EQ(keyed->children.size(), 1u);
  const KeyedNode& dept = keyed->children[0];
  EXPECT_EQ(dept.label.ToString(), "dept{name=finance}");
  // dept has name + 2 emps.
  ASSERT_EQ(dept.children.size(), 3u);
  // Children are sorted by (fingerprint, label); find the emps by tag.
  int emp_count = 0;
  for (const auto& c : dept.children) {
    if (c.label.tag == "emp") {
      ++emp_count;
      EXPECT_FALSE(c.is_frontier);
      EXPECT_EQ(c.label.parts.size(), 2u);
    }
    if (c.label.tag == "name") {
      EXPECT_TRUE(c.is_frontier);
    }
  }
  EXPECT_EQ(emp_count, 2);
}

TEST(AnnotateTest, TelKeyedByContent) {
  KeySpecSet spec = MustParseSpec(kCompanyKeys);
  xml::NodePtr doc = MustParseXml(kVersion4);
  auto keyed = AnnotateKeys(*doc, spec);
  ASSERT_TRUE(keyed.ok());
  // Find Jane Smith and check her two tels have distinct labels.
  const KeyedNode* jane = nullptr;
  for (const auto& c : keyed->children[0].children) {
    if (c.label.ToString().find("Jane") != std::string::npos) jane = &c;
  }
  ASSERT_NE(jane, nullptr);
  std::vector<std::string> tel_labels;
  for (const auto& c : jane->children) {
    if (c.label.tag == "tel") tel_labels.push_back(c.label.ToString());
  }
  ASSERT_EQ(tel_labels.size(), 2u);
  EXPECT_NE(tel_labels[0], tel_labels[1]);
}

TEST(AnnotateTest, DuplicateKeyValueRejected) {
  KeySpecSet spec = MustParseSpec(kCompanyKeys);
  // Two depts with the same name violate (/db, (dept, {name})).
  xml::NodePtr doc = MustParseXml(
      "<db><dept><name>x</name></dept><dept><name>x</name></dept></db>");
  auto keyed = AnnotateKeys(*doc, spec);
  EXPECT_FALSE(keyed.ok());
  EXPECT_EQ(keyed.status().code(), StatusCode::kKeyViolation);
}

TEST(AnnotateTest, RepeatedTelRejected) {
  KeySpecSet spec = MustParseSpec(kCompanyKeys);
  xml::NodePtr doc = MustParseXml(
      "<db><dept><name>x</name><emp><fn>A</fn><ln>B</ln>"
      "<tel>1</tel><tel>1</tel></emp></dept></db>");
  EXPECT_FALSE(AnnotateKeys(*doc, spec).ok());
}

TEST(AnnotateTest, MissingKeyPathRejected) {
  KeySpecSet spec = MustParseSpec(kCompanyKeys);
  // emp without ln: key path must exist uniquely.
  xml::NodePtr doc = MustParseXml(
      "<db><dept><name>x</name><emp><fn>A</fn></emp></dept></db>");
  EXPECT_FALSE(AnnotateKeys(*doc, spec).ok());
}

TEST(AnnotateTest, DuplicateKeyPathRejected) {
  KeySpecSet spec = MustParseSpec(kCompanyKeys);
  xml::NodePtr doc = MustParseXml(
      "<db><dept><name>x</name><name>y</name></dept></db>");
  EXPECT_FALSE(AnnotateKeys(*doc, spec).ok());
}

TEST(AnnotateTest, UnkeyedElementRejected) {
  KeySpecSet spec = MustParseSpec(kCompanyKeys);
  xml::NodePtr doc = MustParseXml(
      "<db><dept><name>x</name><mystery/></dept></db>");
  auto keyed = AnnotateKeys(*doc, spec);
  EXPECT_FALSE(keyed.ok());
  EXPECT_NE(keyed.status().message().find("mystery"), std::string::npos);
}

TEST(AnnotateTest, TextUnderNonFrontierRejected) {
  KeySpecSet spec = MustParseSpec(kCompanyKeys);
  xml::NodePtr doc = MustParseXml("<db>stray text<dept><name>x</name></dept></db>");
  EXPECT_FALSE(AnnotateKeys(*doc, spec).ok());
}

TEST(AnnotateTest, ContentBelowFrontierIsFree) {
  KeySpecSet spec = MustParseSpec(kCompanyKeys);
  // sal is frontier: arbitrary content below it is fine.
  xml::NodePtr doc = MustParseXml(
      "<db><dept><name>x</name><emp><fn>A</fn><ln>B</ln>"
      "<sal><amount>90</amount><currency>USD</currency></sal></emp></dept></db>");
  EXPECT_TRUE(AnnotateKeys(*doc, spec).ok());
}

TEST(AnnotateTest, AttributeKeys) {
  KeySpecSet spec = MustParseSpec(
      "(/, (site, {}))\n"
      "(/site, (item, {id}))\n"
      "(/site/item, (name, {}))");
  xml::NodePtr doc = MustParseXml(
      "<site><item id='i1'><name>a</name></item>"
      "<item id='i2'><name>b</name></item></site>");
  auto keyed = AnnotateKeys(*doc, spec);
  ASSERT_TRUE(keyed.ok()) << keyed.status().ToString();
  ASSERT_EQ(keyed->children.size(), 2u);
  EXPECT_EQ(keyed->children[0].label.parts[0].path, "@id");
}

TEST(AnnotateTest, SiblingsSortedByLabel) {
  KeySpecSet spec = MustParseSpec(kCompanyKeys);
  xml::NodePtr doc = MustParseXml(
      "<db><dept><name>zeta</name></dept><dept><name>alpha</name></dept>"
      "<dept><name>mid</name></dept></db>");
  auto keyed = AnnotateKeys(*doc, spec);
  ASSERT_TRUE(keyed.ok());
  ASSERT_EQ(keyed->children.size(), 3u);
  for (size_t i = 1; i < 3; ++i) {
    EXPECT_TRUE(
        keyed->children[i - 1].label.OrderBefore(keyed->children[i].label));
  }
}

TEST(AnnotateTest, CollisionProneFingerprintsStillAnnotate) {
  KeySpecSet spec = MustParseSpec(kCompanyKeys);
  xml::NodePtr doc = MustParseXml(kVersion4);
  AnnotateOptions opts;
  opts.fingerprint_bits = 2;  // force collisions
  auto keyed = AnnotateKeys(*doc, spec, opts);
  ASSERT_TRUE(keyed.ok());
  // Order must still be strict and duplicates still detected.
  const auto& dept = keyed->children[0];
  for (size_t i = 1; i < dept.children.size(); ++i) {
    EXPECT_TRUE(dept.children[i - 1].label.OrderBefore(dept.children[i].label) ||
                dept.children[i - 1].label == dept.children[i].label);
  }
}

TEST(AnnotateTest, CheckKeysAgreesWithAnnotate) {
  KeySpecSet spec = MustParseSpec(kCompanyKeys);
  EXPECT_TRUE(CheckKeys(*MustParseXml(kVersion4), spec).ok());
  EXPECT_FALSE(CheckKeys(*MustParseXml("<db><oops/></db>"), spec).ok());
}

}  // namespace
}  // namespace xarch::keys
