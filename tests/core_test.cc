#include <gtest/gtest.h>

#include "core/archive.h"
#include "keys/key_spec.h"
#include "util/random.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xml/value.h"

namespace xarch::core {
namespace {

constexpr const char* kCompanyKeys = R"(
(/, (db, {}))
(/db, (dept, {name}))
(/db/dept, (emp, {fn, ln}))
(/db/dept/emp, (sal, {}))
(/db/dept/emp, (tel, {.}))
)";

// The four versions of Fig. 2.
constexpr const char* kV1 = R"(
<db><dept><name>finance</name>
  <emp><fn>John</fn><ln>Doe</ln><sal>95K</sal><tel>123-4567</tel></emp>
</dept></db>)";

constexpr const char* kV2 = R"(
<db><dept><name>finance</name>
  <emp><fn>Jane</fn><ln>Smith</ln></emp>
</dept></db>)";

constexpr const char* kV3 = R"(
<db>
 <dept><name>finance</name>
  <emp><fn>John</fn><ln>Doe</ln><sal>90K</sal><tel>123-4567</tel></emp>
 </dept>
 <dept><name>marketing</name>
  <emp><fn>John</fn><ln>Doe</ln></emp>
 </dept>
</db>)";

constexpr const char* kV4 = R"(
<db><dept><name>finance</name>
  <emp><fn>John</fn><ln>Doe</ln><sal>95K</sal><tel>123-4567</tel></emp>
  <emp><fn>Jane</fn><ln>Smith</ln><sal>95K</sal><tel>123-6789</tel>
       <tel>112-3456</tel></emp>
</dept></db>)";

keys::KeySpecSet CompanySpec() {
  auto spec = keys::ParseKeySpecSet(kCompanyKeys);
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  return std::move(spec).value();
}

xml::NodePtr MustParseXml(std::string_view text) {
  auto result = xml::Parse(text);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

Archive MakeCompanyArchive(ArchiveOptions options = {}) {
  Archive archive(CompanySpec(), options);
  for (const char* v : {kV1, kV2, kV3, kV4}) {
    xml::NodePtr doc = MustParseXml(v);
    Status st = archive.AddVersion(*doc);
    EXPECT_TRUE(st.ok()) << st.ToString();
  }
  return archive;
}

/// Versions must round-trip modulo keyed-sibling order: compare the
/// retrieved version against the original by re-archiving both into
/// single-version archives and comparing their XML (which sorts keyed
/// siblings canonically).
std::string CanonicalArchiveForm(const xml::Node& doc,
                                 const keys::KeySpecSet& spec) {
  auto again = keys::ParseKeySpecSet(kCompanyKeys);
  (void)spec;
  Archive one(std::move(*again));
  Status st = one.AddVersion(doc);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return one.ToXml();
}

// ------------------------------------------------------- paper example

TEST(ArchiveTest, PaperExampleRoundTrip) {
  Archive archive = MakeCompanyArchive();
  EXPECT_EQ(archive.version_count(), 4u);
  EXPECT_TRUE(archive.Check().ok()) << archive.Check().ToString();
  keys::KeySpecSet spec = CompanySpec();
  const char* versions[] = {kV1, kV2, kV3, kV4};
  for (Version v = 1; v <= 4; ++v) {
    auto got = archive.RetrieveVersion(v);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_NE(got->get(), nullptr);
    xml::NodePtr expect = MustParseXml(versions[v - 1]);
    EXPECT_EQ(CanonicalArchiveForm(**got, spec),
              CanonicalArchiveForm(*expect, spec))
        << "version " << v;
  }
}

TEST(ArchiveTest, RootTimestampCoversAllVersions) {
  Archive archive = MakeCompanyArchive();
  EXPECT_EQ(archive.root().stamp->ToString(), "1-4");
}

TEST(ArchiveTest, JaneSmithHasGapTimestamp) {
  // Jane Smith exists at versions 2 and 4 only (Fig. 4: t=[2,4]).
  Archive archive = MakeCompanyArchive();
  auto history = archive.History({{"db", {}},
                                  {"dept", {{"name", "finance"}}},
                                  {"emp", {{"fn", "Jane"}, {"ln", "Smith"}}}});
  ASSERT_TRUE(history.ok()) << history.status().ToString();
  EXPECT_EQ(history->ToString(), "2,4");
}

TEST(ArchiveTest, JohnDoeFinanceHistory) {
  // John Doe of finance: versions 1, 3, 4 (absent in version 2).
  Archive archive = MakeCompanyArchive();
  auto history = archive.History({{"db", {}},
                                  {"dept", {{"name", "finance"}}},
                                  {"emp", {{"fn", "John"}, {"ln", "Doe"}}}});
  ASSERT_TRUE(history.ok());
  EXPECT_EQ(history->ToString(), "1,3-4");
}

TEST(ArchiveTest, MarketingDeptExistsOnlyAtV3) {
  Archive archive = MakeCompanyArchive();
  auto history =
      archive.History({{"db", {}}, {"dept", {{"name", "marketing"}}}});
  ASSERT_TRUE(history.ok());
  EXPECT_EQ(history->ToString(), "3");
  // The marketing John Doe is a different element from the finance one
  // (Sec. 2: same fn/ln under distinct departments).
  auto jd = archive.History({{"db", {}},
                             {"dept", {{"name", "marketing"}}},
                             {"emp", {{"fn", "John"}, {"ln", "Doe"}}}});
  ASSERT_TRUE(jd.ok());
  EXPECT_EQ(jd->ToString(), "3");
}

TEST(ArchiveTest, SalaryBucketsSplitByValue) {
  // John's sal was 90K at v3 and 95K at v1 and v4: sal is a frontier node
  // whose content buckets carry the timestamps (Fig. 5 behaviour).
  Archive archive = MakeCompanyArchive();
  std::string xml = archive.ToXml();
  EXPECT_NE(xml.find("90K"), std::string::npos);
  // 95K appears for John (1,4) and Jane (4); John's bucket must list both
  // versions 1 and 4 somewhere as a stamped alternative.
  EXPECT_NE(xml.find("95K"), std::string::npos);
  // John Doe of finance stored once: exactly two "John" texts in the
  // archive (finance + marketing), not one per version.
  size_t count = 0;
  for (size_t pos = 0; (pos = xml.find("<fn>John</fn>", pos)) != std::string::npos;
       ++pos) {
    ++count;
  }
  EXPECT_EQ(count, 2u);
}

TEST(ArchiveTest, HistoryMissingElement) {
  Archive archive = MakeCompanyArchive();
  auto history =
      archive.History({{"db", {}}, {"dept", {{"name", "sales"}}}});
  EXPECT_FALSE(history.ok());
  EXPECT_EQ(history.status().code(), StatusCode::kNotFound);
}

TEST(ArchiveTest, RetrieveOutOfRange) {
  Archive archive = MakeCompanyArchive();
  EXPECT_FALSE(archive.RetrieveVersion(0).ok());
  EXPECT_FALSE(archive.RetrieveVersion(5).ok());
}

TEST(ArchiveTest, EmptyVersionTracked) {
  // Sec. 2 footnote: archiving an empty database at version 5.
  Archive archive = MakeCompanyArchive();
  archive.AddEmptyVersion();
  EXPECT_EQ(archive.version_count(), 5u);
  EXPECT_EQ(archive.root().stamp->ToString(), "1-5");
  auto got = archive.RetrieveVersion(5);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->get(), nullptr);
  // db node's timestamp terminated at 4.
  auto history = archive.History({{"db", {}}});
  ASSERT_TRUE(history.ok());
  EXPECT_EQ(history->ToString(), "1-4");
  // And version 4 still retrievable.
  auto v4 = archive.RetrieveVersion(4);
  ASSERT_TRUE(v4.ok());
  EXPECT_NE(v4->get(), nullptr);
  EXPECT_TRUE(archive.Check().ok());
}

TEST(ArchiveTest, ReappearingAfterEmptyVersion) {
  Archive archive(CompanySpec());
  ASSERT_TRUE(archive.AddVersion(*MustParseXml(kV1)).ok());
  archive.AddEmptyVersion();
  ASSERT_TRUE(archive.AddVersion(*MustParseXml(kV1)).ok());
  auto history = archive.History({{"db", {}}});
  ASSERT_TRUE(history.ok());
  EXPECT_EQ(history->ToString(), "1,3");
  EXPECT_TRUE(archive.Check().ok());
}

TEST(ArchiveTest, InvalidVersionLeavesArchiveUnchanged) {
  Archive archive(CompanySpec());
  ASSERT_TRUE(archive.AddVersion(*MustParseXml(kV1)).ok());
  std::string before = archive.ToXml();
  // Violates keys: two depts named finance.
  xml::NodePtr bad = MustParseXml(
      "<db><dept><name>finance</name></dept><dept><name>finance</name>"
      "</dept></db>");
  EXPECT_FALSE(archive.AddVersion(*bad).ok());
  EXPECT_EQ(archive.version_count(), 1u);
  EXPECT_EQ(archive.ToXml(), before);
}

// ------------------------------------------------------------ XML round trip

TEST(ArchiveXmlTest, SerializedFormHasTimestampTags) {
  Archive archive = MakeCompanyArchive();
  std::string xml = archive.ToXml();
  EXPECT_NE(xml.find("<T t=\"1-4\">"), std::string::npos);
  EXPECT_NE(xml.find("<root>"), std::string::npos);
  // Jane Smith wrapped with her gap timestamp.
  EXPECT_NE(xml.find("<T t=\"2,4\">"), std::string::npos);
}

TEST(ArchiveXmlTest, FromXmlRoundTrip) {
  Archive archive = MakeCompanyArchive();
  std::string xml = archive.ToXml();
  auto loaded = Archive::FromXml(xml, CompanySpec());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->version_count(), 4u);
  EXPECT_TRUE(loaded->Check().ok()) << loaded->Check().ToString();
  EXPECT_EQ(loaded->ToXml(), xml);
  // Queries work identically on the loaded archive.
  auto history = loaded->History({{"db", {}},
                                  {"dept", {{"name", "finance"}}},
                                  {"emp", {{"fn", "Jane"}, {"ln", "Smith"}}}});
  ASSERT_TRUE(history.ok());
  EXPECT_EQ(history->ToString(), "2,4");
}

TEST(ArchiveXmlTest, MergeContinuesAfterReload) {
  Archive archive(CompanySpec());
  ASSERT_TRUE(archive.AddVersion(*MustParseXml(kV1)).ok());
  ASSERT_TRUE(archive.AddVersion(*MustParseXml(kV2)).ok());
  auto loaded = Archive::FromXml(archive.ToXml(), CompanySpec());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_TRUE(loaded->AddVersion(*MustParseXml(kV3)).ok());
  ASSERT_TRUE(loaded->AddVersion(*MustParseXml(kV4)).ok());
  // Same archive as merging all four in one go.
  Archive direct = MakeCompanyArchive();
  EXPECT_EQ(loaded->ToXml(), direct.ToXml());
}

TEST(ArchiveXmlTest, FromXmlRejectsGarbage) {
  EXPECT_FALSE(Archive::FromXml("<notT/>", CompanySpec()).ok());
  EXPECT_FALSE(Archive::FromXml("<T t='1'><wrong/></T>", CompanySpec()).ok());
  EXPECT_FALSE(Archive::FromXml("<T><root/></T>", CompanySpec()).ok());
}

// ---------------------------------------- loader corrupt-input hardening

TEST(ArchiveXmlTest, FromXmlRejectsChildStampNotSubsetOfParent) {
  // <dept> is stamped {1} but claims a child alive in versions 1-5: no
  // consistent merge produces this, and retrieval would misbehave on it.
  const char* bad = R"(<T t="1"><root>
    <db><T t="1"><dept><name>finance</name>
      <T t="1-5"><emp><fn>John</fn><ln>Doe</ln></emp></T>
    </dept></T></db>
  </root></T>)";
  auto loaded = Archive::FromXml(bad, CompanySpec());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  EXPECT_NE(loaded.status().message().find("subset"), std::string::npos);
}

TEST(ArchiveXmlTest, FromXmlRejectsBucketStampOutsideNode) {
  // A frontier bucket stamped past its node's effective timestamp.
  const char* bad = R"(<T t="1-2"><root>
    <db><dept><name>finance</name>
      <emp><fn>John</fn><ln>Doe</ln>
        <sal><T t="1-9">95K</T></sal>
      </emp>
    </dept></db>
  </root></T>)";
  auto loaded = Archive::FromXml(bad, CompanySpec());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST(ArchiveXmlTest, FromXmlRejectsDuplicateKeyedSiblings) {
  // The same keyed element stored twice under one parent.
  const char* bad = R"(<T t="1"><root>
    <db>
      <dept><name>finance</name></dept>
      <dept><name>finance</name></dept>
    </db>
  </root></T>)";
  auto loaded = Archive::FromXml(bad, CompanySpec());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  EXPECT_NE(loaded.status().message().find("duplicate"), std::string::npos);
}

TEST(ArchiveXmlTest, FromXmlRejectsMissingKeyAttributes) {
  // <dept> without its <name> key path: the label cannot be computed.
  const char* bad = R"(<T t="1"><root>
    <db><dept><emp><fn>John</fn><ln>Doe</ln></emp></dept></db>
  </root></T>)";
  EXPECT_FALSE(Archive::FromXml(bad, CompanySpec()).ok());
}

TEST(ArchiveXmlTest, FromXmlRejectsBadStamps) {
  auto spec = [] { return CompanySpec(); };
  // Unparseable stamp text.
  EXPECT_FALSE(
      Archive::FromXml("<T t='pizza'><root/></T>", spec()).ok());
  // Stamp with a backwards range.
  EXPECT_FALSE(Archive::FromXml("<T t='9-2'><root/></T>", spec()).ok());
  // Overflowing version number.
  EXPECT_FALSE(
      Archive::FromXml("<T t='99999999999'><root/></T>", spec()).ok());
  // Version 0 (versions are numbered from 1).
  EXPECT_FALSE(Archive::FromXml("<T t='0-3'><root/></T>", spec()).ok());
  // Missing t attribute on an inner timestamp element.
  const char* no_attr = R"(<T t="1"><root>
    <db><T><dept><name>finance</name></dept></T></db>
  </root></T>)";
  auto loaded = Archive::FromXml(no_attr, spec());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  // Empty inner stamp.
  const char* empty_stamp = R"(<T t="1"><root>
    <db><T t=""><dept><name>finance</name></dept></T></db>
  </root></T>)";
  EXPECT_FALSE(Archive::FromXml(empty_stamp, spec()).ok());
}

TEST(ArchiveXmlTest, HardenedLoaderStillRoundTripsValidArchives) {
  Archive archive = MakeCompanyArchive();
  auto loaded = Archive::FromXml(archive.ToXml(), CompanySpec());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->Check().ok());
  EXPECT_EQ(loaded->ToXml(), archive.ToXml());
}

TEST(ArchiveXmlTest, AblationSerializationsAreLarger) {
  Archive archive = MakeCompanyArchive();
  ArchiveSerializeOptions base;
  ArchiveSerializeOptions no_inherit = base;
  no_inherit.inherit_timestamps = false;
  size_t base_size = archive.ToXml(base).size();
  size_t no_inherit_size = archive.ToXml(no_inherit).size();
  EXPECT_GT(no_inherit_size, base_size);
}

// --------------------------------------------------------------- weave mode

TEST(ArchiveWeaveTest, PaperExampleStillRoundTrips) {
  ArchiveOptions options;
  options.frontier = FrontierStrategy::kWeave;
  Archive archive = MakeCompanyArchive(options);
  EXPECT_TRUE(archive.Check().ok()) << archive.Check().ToString();
  keys::KeySpecSet spec = CompanySpec();
  const char* versions[] = {kV1, kV2, kV3, kV4};
  for (Version v = 1; v <= 4; ++v) {
    auto got = archive.RetrieveVersion(v);
    ASSERT_TRUE(got.ok());
    xml::NodePtr expect = MustParseXml(versions[v - 1]);
    EXPECT_EQ(CanonicalArchiveForm(**got, spec),
              CanonicalArchiveForm(*expect, spec))
        << "version " << v;
  }
}

TEST(ArchiveWeaveTest, SharedContentStoredOnce) {
  // Fig. 10: frontier content <d/><e/><f/> -> <d/><e/><g/> shares d and e
  // under further compaction.
  auto spec = keys::ParseKeySpecSet("(/, (db, {}))\n(/db, (a, {}))");
  ASSERT_TRUE(spec.ok());
  ArchiveOptions weave_opts;
  weave_opts.frontier = FrontierStrategy::kWeave;
  Archive weave(std::move(*spec), weave_opts);
  ASSERT_TRUE(weave.AddVersion(*MustParseXml("<db><a><d/><e/><f/></a></db>")).ok());
  ASSERT_TRUE(weave.AddVersion(*MustParseXml("<db><a><d/><e/><g/></a></db>")).ok());
  std::string xml = weave.ToXml();
  EXPECT_EQ(xml.find("<d/>"), xml.rfind("<d/>")) << xml;  // d appears once
  EXPECT_EQ(xml.find("<e/>"), xml.rfind("<e/>")) << xml;

  auto spec2 = keys::ParseKeySpecSet("(/, (db, {}))\n(/db, (a, {}))");
  ASSERT_TRUE(spec2.ok());
  Archive buckets(std::move(*spec2));
  ASSERT_TRUE(buckets.AddVersion(*MustParseXml("<db><a><d/><e/><f/></a></db>")).ok());
  ASSERT_TRUE(buckets.AddVersion(*MustParseXml("<db><a><d/><e/><g/></a></db>")).ok());
  std::string bxml = buckets.ToXml();
  // Bucket mode stores both alternatives in full: two copies of d.
  EXPECT_NE(bxml.find("<d/>"), bxml.rfind("<d/>"));
  // Weave archive is smaller.
  EXPECT_LT(xml.size(), bxml.size());
}

TEST(ArchiveWeaveTest, FlipFlopContentRevived) {
  auto make_spec = [] {
    auto s = keys::ParseKeySpecSet("(/, (db, {}))\n(/db, (a, {}))");
    EXPECT_TRUE(s.ok());
    return std::move(*s);
  };
  ArchiveOptions weave_opts;
  weave_opts.frontier = FrontierStrategy::kWeave;
  Archive archive(make_spec(), weave_opts);
  const char* with = "<db><a><x/><flip/><y/></a></db>";
  const char* without = "<db><a><x/><y/></a></db>";
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        archive.AddVersion(*MustParseXml(i % 2 == 0 ? with : without)).ok());
  }
  std::string xml = archive.ToXml();
  EXPECT_EQ(xml.find("<flip/>"), xml.rfind("<flip/>")) << xml;
  for (Version v = 1; v <= 8; ++v) {
    auto got = archive.RetrieveVersion(v);
    ASSERT_TRUE(got.ok());
    xml::NodePtr expect = MustParseXml(v % 2 == 1 ? with : without);
    EXPECT_TRUE(xml::ValueEqual(**got, *expect)) << "version " << v;
  }
}

TEST(ArchiveWeaveTest, WeaveXmlRoundTrips) {
  ArchiveOptions options;
  options.frontier = FrontierStrategy::kWeave;
  Archive archive = MakeCompanyArchive(options);
  std::string xml = archive.ToXml();
  auto loaded = Archive::FromXml(xml, CompanySpec(), options);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->ToXml(), xml);
}

// ----------------------------------------------------- randomized property

struct RandomDb {
  explicit RandomDb(uint64_t seed) : rng(seed) {}

  xml::NodePtr Generate() {
    xml::NodePtr db = xml::Node::Element("db");
    for (const auto& [dept, emps] : state) {
      xml::Node* d = db->AddElement("dept");
      d->AddElementWithText("name", dept);
      for (const auto& [name, sal] : emps) {
        xml::Node* e = d->AddElement("emp");
        e->AddElementWithText("fn", name.first);
        e->AddElementWithText("ln", name.second);
        if (!sal.empty()) e->AddElementWithText("sal", sal);
      }
    }
    return db;
  }

  void Mutate() {
    for (int step = 0; step < 4; ++step) {
      double r = rng.NextDouble();
      if (state.empty() || r < 0.2) {
        state["dept" + std::to_string(rng.Uniform(0, 8))];
      } else if (r < 0.4) {
        auto it = state.begin();
        std::advance(it, rng.Uniform(0, state.size() - 1));
        it->second[{rng.Word(2, 4), rng.Word(2, 4)}] =
            std::to_string(rng.Uniform(50, 120)) + "K";
      } else if (r < 0.6) {
        auto it = state.begin();
        std::advance(it, rng.Uniform(0, state.size() - 1));
        if (!it->second.empty()) {
          auto eit = it->second.begin();
          std::advance(eit, rng.Uniform(0, it->second.size() - 1));
          eit->second = std::to_string(rng.Uniform(50, 120)) + "K";  // new sal
        }
      } else if (r < 0.8) {
        auto it = state.begin();
        std::advance(it, rng.Uniform(0, state.size() - 1));
        if (!it->second.empty()) {
          auto eit = it->second.begin();
          std::advance(eit, rng.Uniform(0, it->second.size() - 1));
          it->second.erase(eit);
        }
      } else {
        auto it = state.begin();
        std::advance(it, rng.Uniform(0, state.size() - 1));
        state.erase(it);
      }
    }
  }

  Rng rng;
  std::map<std::string,
           std::map<std::pair<std::string, std::string>, std::string>>
      state;
};

class ArchivePropertyTest
    : public ::testing::TestWithParam<std::tuple<int, FrontierStrategy>> {};

TEST_P(ArchivePropertyTest, RandomHistoriesRoundTripAndCheck) {
  auto [seed, strategy] = GetParam();
  RandomDb random_db(seed);
  ArchiveOptions options;
  options.frontier = strategy;
  Archive archive(CompanySpec(), options);
  std::vector<std::string> canon_versions;
  keys::KeySpecSet spec = CompanySpec();
  for (int v = 0; v < 15; ++v) {
    random_db.Mutate();
    xml::NodePtr doc = random_db.Generate();
    canon_versions.push_back(CanonicalArchiveForm(*doc, spec));
    Status st = archive.AddVersion(*doc);
    ASSERT_TRUE(st.ok()) << st.ToString();
    Status check = archive.Check();
    ASSERT_TRUE(check.ok()) << check.ToString();
  }
  for (Version v = 1; v <= 15; ++v) {
    auto got = archive.RetrieveVersion(v);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_NE(got->get(), nullptr);
    EXPECT_EQ(CanonicalArchiveForm(**got, spec), canon_versions[v - 1])
        << "version " << v << " seed " << seed;
  }
  // XML round trip preserves everything.
  auto loaded = Archive::FromXml(archive.ToXml(), CompanySpec(), options);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->ToXml(), archive.ToXml());
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, ArchivePropertyTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 6, 7, 8),
                       ::testing::Values(FrontierStrategy::kBuckets,
                                         FrontierStrategy::kWeave)));

// -------------------------------------------------- fingerprint collisions

TEST(ArchiveFingerprintTest, TruncatedFingerprintsStillCorrect) {
  // With 3-bit fingerprints, collisions abound; the label verification on
  // fingerprint ties (Sec. 4.3) must keep the archive correct.
  ArchiveOptions options;
  options.annotate.fingerprint_bits = 3;
  Archive archive = MakeCompanyArchive(options);
  EXPECT_TRUE(archive.Check().ok());
  keys::KeySpecSet spec = CompanySpec();
  const char* versions[] = {kV1, kV2, kV3, kV4};
  for (Version v = 1; v <= 4; ++v) {
    auto got = archive.RetrieveVersion(v);
    ASSERT_TRUE(got.ok());
    // Compare against a default-fingerprint single-version archive: content
    // equality is what matters.
    Archive one(CompanySpec(), options);
    ASSERT_TRUE(one.AddVersion(*MustParseXml(versions[v - 1])).ok());
    Archive two(CompanySpec(), options);
    ASSERT_TRUE(two.AddVersion(**got).ok());
    EXPECT_EQ(one.ToXml(), two.ToXml()) << "version " << v;
  }
}

TEST(ArchiveFingerprintTest, TruncatedMatchesFullArchiveContent) {
  ArchiveOptions truncated;
  truncated.annotate.fingerprint_bits = 2;
  Archive a = MakeCompanyArchive(truncated);
  Archive b = MakeCompanyArchive();
  // Serialized order may differ (fingerprint sort) but each version must
  // reconstruct identically.
  keys::KeySpecSet spec = CompanySpec();
  for (Version v = 1; v <= 4; ++v) {
    auto ga = a.RetrieveVersion(v);
    auto gb = b.RetrieveVersion(v);
    ASSERT_TRUE(ga.ok() && gb.ok());
    EXPECT_EQ(CanonicalArchiveForm(**ga, spec), CanonicalArchiveForm(**gb, spec));
  }
}

}  // namespace
}  // namespace xarch::core
