#include <gtest/gtest.h>

#include "util/hash.h"
#include "util/random.h"
#include "util/status.h"
#include "util/strings.h"

namespace xarch {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::ParseError("bad token");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  EXPECT_EQ(st.message(), "bad token");
  EXPECT_EQ(st.ToString(), "ParseError: bad token");
}

TEST(StatusTest, FactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::KeyViolation("x").code(), StatusCode::kKeyViolation);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> so(42);
  ASSERT_TRUE(so.ok());
  EXPECT_EQ(*so, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> so(Status::NotFound("missing"));
  ASSERT_FALSE(so.ok());
  EXPECT_EQ(so.status().code(), StatusCode::kNotFound);
}

StatusOr<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

Status UseAssignOrReturn(int v, int* out) {
  XARCH_ASSIGN_OR_RETURN(int parsed, ParsePositive(v));
  *out = parsed * 2;
  return Status::OK();
}

TEST(StatusOrTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(21, &out).ok());
  EXPECT_EQ(out, 42);
  EXPECT_FALSE(UseAssignOrReturn(-1, &out).ok());
}

TEST(StringsTest, SplitKeepsEmptyFields) {
  auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, SplitSkipEmpty) {
  auto parts = SplitSkipEmpty("/a//b/", '/');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
}

TEST(StringsTest, JoinRoundTrips) {
  std::vector<std::string> parts = {"a", "b", "c"};
  EXPECT_EQ(Join(parts, "/"), "a/b/c");
  EXPECT_EQ(Join({}, "/"), "");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  x y \t\n"), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_FALSE(StartsWith("hello", "hello!"));
  EXPECT_TRUE(EndsWith("hello", "lo"));
  EXPECT_FALSE(EndsWith("hello", "hhello"));
}

TEST(StringsTest, IsAllWhitespace) {
  EXPECT_TRUE(IsAllWhitespace(" \t\r\n"));
  EXPECT_TRUE(IsAllWhitespace(""));
  EXPECT_FALSE(IsAllWhitespace(" x "));
}

TEST(StringsTest, SplitLines) {
  auto lines = SplitLines("a\nb\nc\n");
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[2], "c");
  lines = SplitLines("a\nb");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[1], "b");
  EXPECT_TRUE(SplitLines("").empty());
}

TEST(StringsTest, FormatWithCommas) {
  EXPECT_EQ(FormatWithCommas(0), "0");
  EXPECT_EQ(FormatWithCommas(999), "999");
  EXPECT_EQ(FormatWithCommas(1000), "1,000");
  EXPECT_EQ(FormatWithCommas(1234567), "1,234,567");
}

TEST(StringsTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
}

// RFC 1321 test vectors.
TEST(Md5Test, Rfc1321Vectors) {
  EXPECT_EQ(Md5("").ToHex(), "d41d8cd98f00b204e9800998ecf8427e");
  EXPECT_EQ(Md5("a").ToHex(), "0cc175b9c0f1b6a831c399e269772661");
  EXPECT_EQ(Md5("abc").ToHex(), "900150983cd24fb0d6963f7d28e17f72");
  EXPECT_EQ(Md5("message digest").ToHex(),
            "f96b697d7cb7938d525a2f31aaf161d0");
  EXPECT_EQ(Md5("abcdefghijklmnopqrstuvwxyz").ToHex(),
            "c3fcd3d76192e4007dfb496cca67e13b");
  EXPECT_EQ(
      Md5("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789")
          .ToHex(),
      "d174ab98d277d9f5a5611c2c9f419d9f");
  EXPECT_EQ(Md5("1234567890123456789012345678901234567890123456789012345678"
                "9012345678901234567890")
                .ToHex(),
            "57edf4a22be3c955ac49da2e2107b67a");
}

TEST(Md5Test, IncrementalMatchesOneShot) {
  std::string data;
  for (int i = 0; i < 1000; ++i) data += "chunk-" + std::to_string(i);
  Md5Hasher hasher;
  size_t pos = 0;
  size_t sizes[] = {1, 7, 63, 64, 65, 128, 500};
  int i = 0;
  while (pos < data.size()) {
    size_t take = std::min(sizes[i % 7], data.size() - pos);
    hasher.Update(std::string_view(data).substr(pos, take));
    pos += take;
    ++i;
  }
  EXPECT_EQ(hasher.Finish().ToHex(), Md5(data).ToHex());
}

TEST(Md5Test, Low64IsStable) {
  EXPECT_EQ(Md5("abc").Low64(), Md5("abc").Low64());
  EXPECT_NE(Md5("abc").Low64(), Md5("abd").Low64());
}

TEST(Fnv1aTest, KnownValues) {
  // FNV-1a 64-bit reference values.
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(Fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_NE(Fnv1a64("archive"), Fnv1a64("archives"));
}

TEST(RngTest, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Uniform(0, 1000000), b.Uniform(0, 1000000));
  }
}

TEST(RngTest, UniformBounds) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.Uniform(5, 10);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 10u);
  }
}

TEST(RngTest, WordLengthInRange) {
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    std::string w = rng.Word(3, 8);
    EXPECT_GE(w.size(), 3u);
    EXPECT_LE(w.size(), 8u);
    for (char c : w) {
      EXPECT_GE(c, 'a');
      EXPECT_LE(c, 'z');
    }
  }
}

TEST(RngTest, PickReturnsElement) {
  Rng rng(3);
  std::vector<int> items = {1, 2, 3};
  for (int i = 0; i < 50; ++i) {
    int v = rng.Pick(items);
    EXPECT_TRUE(v >= 1 && v <= 3);
  }
}

}  // namespace
}  // namespace xarch
