#include <gtest/gtest.h>

#include "core/archive.h"
#include "core/changes.h"
#include "keys/key_spec.h"
#include "xml/parser.h"

namespace xarch::core {
namespace {

keys::KeySpecSet MustSpec(const char* text) {
  auto spec = keys::ParseKeySpecSet(text);
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  return std::move(spec).value();
}

xml::NodePtr MustParseXml(std::string_view text) {
  auto result = xml::Parse(text);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

constexpr const char* kGeneKeys = R"(
(/, (genes, {}))
(/genes, (gene, {id}))
(/genes/gene, (name, {}))
(/genes/gene, (seq, {}))
(/genes/gene, (pos, {}))
)";

TEST(ChangesTest, Figure1GeneSwapIsDescribedByKey) {
  // The paper's Fig. 1: two genes whose information had been confused and
  // was corrected. diff explains it as genes renaming themselves; the
  // key-based description says the truth: each gene's seq/pos changed.
  Archive archive(MustSpec(kGeneKeys));
  ASSERT_TRUE(archive
                  .AddVersion(*MustParseXml(
                      "<genes>"
                      "<gene id='6230'><name>GRTM</name><seq>GTCG</seq>"
                      "<pos>11A52</pos></gene>"
                      "<gene id='2953'><name>ACV2</name><seq>AGTT</seq>"
                      "<pos>08A96</pos></gene></genes>"))
                  .ok());
  ASSERT_TRUE(archive
                  .AddVersion(*MustParseXml(
                      "<genes>"
                      "<gene id='2953'><name>ACV2</name><seq>GTCG</seq>"
                      "<pos>11A52</pos></gene>"
                      "<gene id='6230'><name>GRTM</name><seq>AGTT</seq>"
                      "<pos>08A96</pos></gene></genes>"))
                  .ok());
  auto changes = DescribeChanges(archive, 1, 2);
  ASSERT_TRUE(changes.ok()) << changes.status().ToString();
  // Four content changes (seq and pos of both genes); crucially NO
  // insertion/deletion and NO name change: the genes kept their identity.
  EXPECT_EQ(changes->size(), 4u);
  for (const auto& change : *changes) {
    EXPECT_EQ(change.kind, Change::Kind::kContentChanged);
    EXPECT_TRUE(change.path.find("/seq") != std::string::npos ||
                change.path.find("/pos") != std::string::npos)
        << change.path;
  }
}

constexpr const char* kCompanyKeys = R"(
(/, (db, {}))
(/db, (dept, {name}))
(/db/dept, (emp, {fn, ln}))
(/db/dept/emp, (sal, {}))
(/db/dept/emp, (tel, {.}))
)";

Archive CompanyArchive() {
  Archive archive(MustSpec(kCompanyKeys));
  const char* versions[] = {
      "<db><dept><name>finance</name>"
      "<emp><fn>John</fn><ln>Doe</ln><sal>95K</sal></emp></dept></db>",
      "<db><dept><name>finance</name>"
      "<emp><fn>Jane</fn><ln>Smith</ln></emp></dept></db>",
      "<db><dept><name>finance</name>"
      "<emp><fn>John</fn><ln>Doe</ln><sal>90K</sal></emp></dept>"
      "<dept><name>marketing</name></dept></db>",
  };
  for (const char* v : versions) {
    EXPECT_TRUE(archive.AddVersion(*MustParseXml(v)).ok());
  }
  return archive;
}

TEST(ChangesTest, InsertionsAndDeletionsReportedOutermost) {
  Archive archive = CompanyArchive();
  auto changes = DescribeChanges(archive, 1, 2);
  ASSERT_TRUE(changes.ok());
  // John left (one deletion, not one per sub-element), Jane arrived.
  int inserted = 0, deleted = 0;
  for (const auto& change : *changes) {
    if (change.kind == Change::Kind::kInserted) {
      ++inserted;
      EXPECT_NE(change.path.find("Jane"), std::string::npos);
    }
    if (change.kind == Change::Kind::kDeleted) {
      ++deleted;
      EXPECT_NE(change.path.find("John"), std::string::npos);
    }
  }
  EXPECT_EQ(inserted, 1);
  EXPECT_EQ(deleted, 1);
}

TEST(ChangesTest, ContentChangeOnFrontier) {
  Archive archive = CompanyArchive();
  auto changes = DescribeChanges(archive, 1, 3);
  ASSERT_TRUE(changes.ok());
  // John 95K -> 90K (sal content change) and marketing dept inserted.
  bool sal_changed = false, marketing_inserted = false;
  for (const auto& change : *changes) {
    if (change.kind == Change::Kind::kContentChanged &&
        change.path.find("/sal") != std::string::npos) {
      sal_changed = true;
    }
    if (change.kind == Change::Kind::kInserted &&
        change.path.find("marketing") != std::string::npos) {
      marketing_inserted = true;
    }
  }
  EXPECT_TRUE(sal_changed);
  EXPECT_TRUE(marketing_inserted);
}

TEST(ChangesTest, SameVersionNoChanges) {
  Archive archive = CompanyArchive();
  auto changes = DescribeChanges(archive, 2, 2);
  ASSERT_TRUE(changes.ok());
  EXPECT_TRUE(changes->empty());
}

TEST(ChangesTest, ReverseDirectionSwapsKinds) {
  Archive archive = CompanyArchive();
  auto forward = DescribeChanges(archive, 1, 2);
  auto backward = DescribeChanges(archive, 2, 1);
  ASSERT_TRUE(forward.ok() && backward.ok());
  ASSERT_EQ(forward->size(), backward->size());
  size_t forward_inserts = 0, backward_deletes = 0;
  for (const auto& c : *forward) {
    if (c.kind == Change::Kind::kInserted) ++forward_inserts;
  }
  for (const auto& c : *backward) {
    if (c.kind == Change::Kind::kDeleted) ++backward_deletes;
  }
  EXPECT_EQ(forward_inserts, backward_deletes);
}

TEST(ChangesTest, OutOfRangeRejected) {
  Archive archive = CompanyArchive();
  EXPECT_FALSE(DescribeChanges(archive, 0, 1).ok());
  EXPECT_FALSE(DescribeChanges(archive, 1, 9).ok());
}

TEST(ChangesTest, FormatUsesSigils) {
  std::vector<Change> changes = {
      {Change::Kind::kInserted, "/db/a"},
      {Change::Kind::kDeleted, "/db/b"},
      {Change::Kind::kContentChanged, "/db/c"},
  };
  EXPECT_EQ(FormatChanges(changes), "+ /db/a\n- /db/b\n~ /db/c\n");
}

}  // namespace
}  // namespace xarch::core
