#include <gtest/gtest.h>

#include <filesystem>

#include "core/archive.h"
#include "extmem/external_archiver.h"
#include "extmem/internal_rep.h"
#include "synth/omim.h"
#include "synth/xmark.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xml/value.h"

namespace xarch::extmem {
namespace {

constexpr const char* kCompanyKeys = R"(
(/, (db, {}))
(/db, (dept, {name}))
(/db/dept, (emp, {fn, ln}))
(/db/dept/emp, (sal, {}))
(/db/dept/emp, (tel, {.}))
)";

keys::KeySpecSet MustSpec(const char* text) {
  auto spec = keys::ParseKeySpecSet(text);
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  return std::move(spec).value();
}

xml::NodePtr MustParseXml(std::string_view text) {
  auto result = xml::Parse(text);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

std::string FreshWorkDir(const std::string& name) {
  std::string dir = std::filesystem::temp_directory_path() /
                    ("xarch_test_" + name + "_" +
                     std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  return dir;
}

// ---------------------------------------------------- internal rep (6.1)

TEST(InternalRepTest, EncodeDecodeRoundTrip) {
  keys::KeySpecSet spec = MustSpec(kCompanyKeys);
  xml::NodePtr doc = MustParseXml(
      "<db><dept><name>finance</name><emp><fn>John</fn><ln>Doe</ln>"
      "<sal>95K</sal><tel>123-4567</tel></emp></dept></db>");
  auto rep = EncodeDocument(*doc, spec);
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  auto back = DecodeDocument(*rep);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(xml::ValueEqual(*doc, **back));
}

TEST(InternalRepTest, DictionaryDeduplicatesTagNames) {
  keys::KeySpecSet spec = MustSpec(kCompanyKeys);
  xml::NodePtr db = xml::Node::Element("db");
  xml::Node* dept = db->AddElement("dept");
  dept->AddElementWithText("name", "x");
  for (int i = 0; i < 50; ++i) {
    xml::Node* emp = dept->AddElement("emp");
    emp->AddElementWithText("fn", "a" + std::to_string(i));
    emp->AddElementWithText("ln", "b");
  }
  auto rep = EncodeDocument(*db, spec);
  ASSERT_TRUE(rep.ok());
  // 6 distinct names: db, dept, name, emp, fn, ln.
  EXPECT_EQ(rep->dictionary.size(), 6u);
  // Tokenized form is much smaller than the XML text.
  EXPECT_LT(rep->tokens.size(), xml::Serialize(*db).size());
}

TEST(InternalRepTest, KeyFilesGroupValuesByPath) {
  keys::KeySpecSet spec = MustSpec(kCompanyKeys);
  xml::NodePtr doc = MustParseXml(
      "<db><dept><name>finance</name><emp><fn>John</fn><ln>Doe</ln></emp>"
      "<emp><fn>Jane</fn><ln>Smith</ln></emp></dept></db>");
  auto rep = EncodeDocument(*doc, spec);
  ASSERT_TRUE(rep.ok());
  // Key files exist for dept (name key) and emp (fn/ln key).
  ASSERT_TRUE(rep->key_files.count("/db/dept"));
  ASSERT_TRUE(rep->key_files.count("/db/dept/emp"));
  const std::string& emp_file = rep->key_files.at("/db/dept/emp");
  EXPECT_NE(emp_file.find("John"), std::string::npos);
  EXPECT_NE(emp_file.find("Jane"), std::string::npos);
  EXPECT_EQ(rep->key_files.count("/db"), 0u);  // {} key: no key values
}

TEST(InternalRepTest, DecodeRejectsCorrupt) {
  InternalRep rep;
  rep.tokens = "\x01\x05";  // open with out-of-range dictionary id
  EXPECT_FALSE(DecodeDocument(rep).ok());
}

// ----------------------------------------------- external archiver (6.2/3)

constexpr const char* kV1 = R"(
<db><dept><name>finance</name>
  <emp><fn>John</fn><ln>Doe</ln><sal>95K</sal><tel>123-4567</tel></emp>
</dept></db>)";
constexpr const char* kV2 = R"(
<db><dept><name>finance</name>
  <emp><fn>Jane</fn><ln>Smith</ln></emp>
</dept></db>)";
constexpr const char* kV3 = R"(
<db>
 <dept><name>finance</name>
  <emp><fn>John</fn><ln>Doe</ln><sal>90K</sal><tel>123-4567</tel></emp>
 </dept>
 <dept><name>marketing</name>
  <emp><fn>John</fn><ln>Doe</ln></emp>
 </dept>
</db>)";
constexpr const char* kV4 = R"(
<db><dept><name>finance</name>
  <emp><fn>John</fn><ln>Doe</ln><sal>95K</sal><tel>123-4567</tel></emp>
  <emp><fn>Jane</fn><ln>Smith</ln><sal>95K</sal><tel>123-6789</tel>
       <tel>112-3456</tel></emp>
</dept></db>)";

TEST(ExternalArchiverTest, PaperExampleMatchesInMemory) {
  ExternalArchiver::Options options;
  options.work_dir = FreshWorkDir("paper");
  options.memory_budget_rows = 4;  // force many runs
  options.fan_in = 2;
  ExternalArchiver ext(MustSpec(kCompanyKeys), options);
  core::Archive mem(MustSpec(kCompanyKeys));
  for (const char* v : {kV1, kV2, kV3, kV4}) {
    xml::NodePtr doc = MustParseXml(v);
    ASSERT_TRUE(ext.AddVersion(*doc).ok());
    ASSERT_TRUE(mem.AddVersion(*doc).ok());
  }
  EXPECT_GT(ext.stats().run_count, 4u);
  // Every version retrieved from the external archive equals the in-memory
  // archiver's reconstruction (modulo keyed-sibling order: compare via
  // single-version archives).
  for (Version v = 1; v <= 4; ++v) {
    auto ge = ext.RetrieveVersion(v);
    auto gm = mem.RetrieveVersion(v);
    ASSERT_TRUE(ge.ok()) << ge.status().ToString();
    ASSERT_TRUE(gm.ok());
    core::Archive a(MustSpec(kCompanyKeys)), b(MustSpec(kCompanyKeys));
    ASSERT_TRUE(a.AddVersion(**ge).ok());
    ASSERT_TRUE(b.AddVersion(**gm).ok());
    EXPECT_EQ(a.ToXml(), b.ToXml()) << "version " << v;
  }
  std::filesystem::remove_all(options.work_dir);
}

TEST(ExternalArchiverTest, XmlLoadableAndCheckable) {
  ExternalArchiver::Options options;
  options.work_dir = FreshWorkDir("loadable");
  ExternalArchiver ext(MustSpec(kCompanyKeys), options);
  for (const char* v : {kV1, kV2, kV3, kV4}) {
    ASSERT_TRUE(ext.AddVersion(*MustParseXml(v)).ok());
  }
  auto xml = ext.ToXml();
  ASSERT_TRUE(xml.ok()) << xml.status().ToString();
  auto loaded = core::Archive::FromXml(*xml, MustSpec(kCompanyKeys));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->version_count(), 4u);
  EXPECT_TRUE(loaded->Check().ok()) << loaded->Check().ToString();
  auto history = loaded->History({{"db", {}},
                                  {"dept", {{"name", "finance"}}},
                                  {"emp", {{"fn", "Jane"}, {"ln", "Smith"}}}});
  ASSERT_TRUE(history.ok());
  EXPECT_EQ(history->ToString(), "2,4");
  std::filesystem::remove_all(options.work_dir);
}

TEST(ExternalArchiverTest, MemoryBudgetControlsRunCount) {
  synth::OmimGenerator::Options gen_options;
  gen_options.initial_records = 30;
  auto make = [&](size_t budget, uint64_t* runs, uint64_t* passes) {
    synth::OmimGenerator gen(gen_options);
    ExternalArchiver::Options options;
    options.work_dir = FreshWorkDir("budget" + std::to_string(budget));
    options.memory_budget_rows = budget;
    options.fan_in = 2;
    ExternalArchiver ext(MustSpec(synth::OmimGenerator::KeySpecText()), options);
    for (int v = 0; v < 2; ++v) {
      Status st = ext.AddVersion(*gen.NextVersion());
      ASSERT_TRUE(st.ok()) << st.ToString();
    }
    *runs = ext.stats().run_count;
    *passes = ext.stats().merge_passes;
    std::filesystem::remove_all(options.work_dir);
  };
  uint64_t small_runs = 0, small_passes = 0, big_runs = 0, big_passes = 0;
  make(16, &small_runs, &small_passes);
  make(100000, &big_runs, &big_passes);
  EXPECT_GT(small_runs, big_runs);
  EXPECT_GT(small_passes, big_passes);
}

TEST(ExternalArchiverTest, AgreesWithInMemoryOnSyntheticData) {
  synth::XMarkGenerator::Options gen_options;
  gen_options.items = 6;
  gen_options.people = 10;
  gen_options.open_auctions = 6;
  synth::XMarkGenerator gen(gen_options);
  ExternalArchiver::Options options;
  options.work_dir = FreshWorkDir("xmark");
  options.memory_budget_rows = 64;
  ExternalArchiver ext(MustSpec(synth::XMarkGenerator::KeySpecText()),
                       options);
  core::Archive mem(MustSpec(synth::XMarkGenerator::KeySpecText()));
  for (int v = 0; v < 5; ++v) {
    if (v > 0) gen.MutateRandom(8.0);
    xml::NodePtr doc = gen.Current();
    ASSERT_TRUE(ext.AddVersion(*doc).ok());
    ASSERT_TRUE(mem.AddVersion(*doc).ok());
  }
  for (Version v = 1; v <= 5; ++v) {
    auto ge = ext.RetrieveVersion(v);
    auto gm = mem.RetrieveVersion(v);
    ASSERT_TRUE(ge.ok()) << ge.status().ToString();
    ASSERT_TRUE(gm.ok());
    core::Archive a(MustSpec(synth::XMarkGenerator::KeySpecText()));
    core::Archive b(MustSpec(synth::XMarkGenerator::KeySpecText()));
    ASSERT_TRUE(a.AddVersion(**ge).ok());
    ASSERT_TRUE(b.AddVersion(**gm).ok());
    EXPECT_EQ(a.ToXml(), b.ToXml()) << "version " << v;
  }
  std::filesystem::remove_all(options.work_dir);
}

TEST(ExternalArchiverTest, IoAccountingNonZero) {
  ExternalArchiver::Options options;
  options.work_dir = FreshWorkDir("iostats");
  ExternalArchiver ext(MustSpec(kCompanyKeys), options);
  ASSERT_TRUE(ext.AddVersion(*MustParseXml(kV1)).ok());
  EXPECT_GT(ext.stats().bytes_written, 0u);
  EXPECT_GT(ext.stats().bytes_read, 0u);
  EXPECT_GT(ext.stats().PagesWritten(options.page_bytes), 0u);
  ext.ClearStats();
  EXPECT_EQ(ext.stats().bytes_read, 0u);
  std::filesystem::remove_all(options.work_dir);
}

TEST(ExternalArchiverTest, EmptyArchiveErrors) {
  ExternalArchiver::Options options;
  options.work_dir = FreshWorkDir("empty");
  ExternalArchiver ext(MustSpec(kCompanyKeys), options);
  EXPECT_FALSE(ext.ToXml().ok());
  EXPECT_FALSE(ext.RetrieveVersion(1).ok());
  std::filesystem::remove_all(options.work_dir);
}

}  // namespace
}  // namespace xarch::extmem
