#include <gtest/gtest.h>

#include "compress/container.h"
#include "compress/lzss.h"
#include "util/random.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xml/value.h"

namespace xarch::compress {
namespace {

// ----------------------------------------------------------------- LZSS

TEST(LzssTest, RoundTripEmpty) {
  auto out = LzssDecompress(LzssCompress(""));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, "");
}

TEST(LzssTest, RoundTripShort) {
  for (const char* s : {"a", "ab", "abc", "aaaa", "abcdabcdabcd"}) {
    auto out = LzssDecompress(LzssCompress(s));
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    EXPECT_EQ(*out, s);
  }
}

TEST(LzssTest, RoundTripRepetitive) {
  std::string data;
  for (int i = 0; i < 1000; ++i) data += "<emp><fn>John</fn><ln>Doe</ln></emp>";
  std::string compressed = LzssCompress(data);
  EXPECT_LT(compressed.size(), data.size() / 5);
  auto out = LzssDecompress(compressed);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, data);
}

TEST(LzssTest, RoundTripRandomBinary) {
  Rng rng(5);
  std::string data;
  for (int i = 0; i < 50000; ++i) {
    data.push_back(static_cast<char>(rng.Uniform(0, 255)));
  }
  auto out = LzssDecompress(LzssCompress(data));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, data);
}

TEST(LzssTest, RoundTripMixed) {
  Rng rng(6);
  std::string data;
  for (int block = 0; block < 200; ++block) {
    if (rng.Chance(0.5)) {
      data += "repeated block of xml-ish text <tag attr=\"v\">payload</tag>\n";
    } else {
      data += rng.Word(5, 80) + "\n";
    }
  }
  auto out = LzssDecompress(LzssCompress(data));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, data);
}

TEST(LzssTest, LongMatchesBeyondTokenCap) {
  // A run far longer than one match token can encode (258 bytes).
  std::string data(100000, 'x');
  std::string compressed = LzssCompress(data);
  EXPECT_LT(compressed.size(), 3000u);
  auto out = LzssDecompress(compressed);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), data.size());
  EXPECT_EQ(*out, data);
}

TEST(LzssTest, MatchesAcrossWindow) {
  // Redundancy at distance < 32K compresses; beyond the window it cannot.
  std::string unit(1000, 'a');
  for (size_t i = 0; i < unit.size(); i += 7) unit[i] = 'b' + (i % 20);
  std::string near = unit + unit;  // distance 1000
  EXPECT_LT(LzssCompressedSize(near), unit.size() * 3 / 2);
  auto out = LzssDecompress(LzssCompress(near));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, near);
}

TEST(LzssTest, TryCompressRejectsOversizedInputWithClearStatus) {
  // The real bound is 2 GiB (int32 hash-chain positions); the injectable
  // limit exercises the rejection path without allocating that much.
  std::string data = "hello world hello world";
  auto rejected = LzssTryCompress(data, data.size() - 1);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(rejected.status().ToString().find("exceeds the supported"),
            std::string::npos);

  // At or under the limit it is exactly LzssCompress.
  auto accepted = LzssTryCompress(data, data.size());
  ASSERT_TRUE(accepted.ok());
  EXPECT_EQ(*accepted, LzssCompress(data));

  // The default bound admits ordinary inputs.
  auto normal = LzssTryCompress(data);
  ASSERT_TRUE(normal.ok());
  EXPECT_EQ(*normal, LzssCompress(data));
  static_assert(kLzssMaxInputBytes < (size_t{1} << 31),
                "positions must fit int32_t");
}

TEST(LzssTest, OversizedLegacyPathStaysDecodable) {
  // LzssCompress cannot return a Status; above the bound it must still
  // produce a valid (all-literal) stream rather than overflow the tables.
  // Simulated by calling the literal fallback through the public entry
  // point with the bound crossed is impossible without 2 GiB, so pin the
  // equivalence on a small input instead: an all-literal stream built by
  // hand decodes to the input.
  const std::string data = "abcdefghijklmnop";  // 16 bytes, two flag groups
  std::string stream("LZS1", 4);
  for (int i = 0; i < 8; ++i) {
    stream.push_back(static_cast<char>(data.size() >> (8 * i)));
  }
  stream.push_back(0);
  stream.append(data, 0, 8);
  stream.push_back(0);
  stream.append(data, 8, 8);
  auto out = LzssDecompress(stream);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(*out, data);
}

TEST(LzssTest, DecompressRejectsGarbage) {
  EXPECT_FALSE(LzssDecompress("").ok());
  EXPECT_FALSE(LzssDecompress("nonsense data").ok());
  std::string valid = LzssCompress("hello world hello world");
  std::string truncated = valid.substr(0, valid.size() - 3);
  EXPECT_FALSE(LzssDecompress(truncated).ok());
}

// --------------------------------------------- corrupt-input hardening

/// A valid stream with matches (the input repeats, so real back-references
/// are emitted) used as the corpus for targeted corruption below.
std::string ValidMatchStream() {
  std::string data;
  for (int i = 0; i < 40; ++i) data += "the quick brown fox #" +
                                       std::to_string(i % 4) + " ";
  return LzssCompress(data);
}

TEST(LzssHardeningTest, CorruptInputsReturnDataLoss) {
  EXPECT_EQ(LzssDecompress("").status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(LzssDecompress("LZS1").status().code(), StatusCode::kDataLoss);
  std::string valid = ValidMatchStream();
  EXPECT_EQ(LzssDecompress(valid.substr(0, valid.size() - 2)).status().code(),
            StatusCode::kDataLoss);
}

TEST(LzssHardeningTest, ImplausibleDeclaredSizeIsRejectedBeforeAllocation) {
  // A 13-byte stream claiming 2^60 output bytes: must fail fast with
  // kDataLoss, not attempt a reservation.
  std::string stream = "LZS1";
  uint64_t huge = uint64_t{1} << 60;
  for (int i = 0; i < 8; ++i) stream.push_back(static_cast<char>(huge >> (8 * i)));
  stream.push_back(0);
  auto out = LzssDecompress(stream);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kDataLoss);
}

TEST(LzssHardeningTest, OutOfRangeBackReferenceIsRejected) {
  // Header for 8 output bytes, then a match token pointing 500 bytes back
  // when nothing has been decoded yet.
  std::string stream = "LZS1";
  for (int i = 0; i < 8; ++i) stream.push_back(i == 0 ? 8 : 0);
  stream.push_back(1);                               // flags: token 0 = match
  stream.push_back(static_cast<char>(500 & 0xff));   // distance lo
  stream.push_back(static_cast<char>(500 >> 8));     // distance hi
  stream.push_back(4);                               // length
  auto out = LzssDecompress(stream);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(out.status().message().find("distance"), std::string::npos);
}

TEST(LzssHardeningTest, MatchLengthPastDeclaredOutputIsRejected) {
  // Declared size 6; 4 literals then a match of length >= 4 would overrun.
  std::string stream = "LZS1";
  for (int i = 0; i < 8; ++i) stream.push_back(i == 0 ? 6 : 0);
  stream.push_back(0x10);  // flags: tokens 0-3 literal, token 4 match
  stream += "abcd";
  stream.push_back(2);   // distance 2
  stream.push_back(0);
  stream.push_back(50);  // length 54, way past the declared 6
  auto out = LzssDecompress(stream);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(out.status().message().find("declared output"), std::string::npos);
}

TEST(LzssHardeningTest, EveryTruncationOfAValidStreamFailsCleanly) {
  std::string valid = ValidMatchStream();
  ASSERT_TRUE(LzssDecompress(valid).ok());
  for (size_t cut = 0; cut < valid.size(); ++cut) {
    auto out = LzssDecompress(valid.substr(0, cut));
    EXPECT_FALSE(out.ok()) << "cut at " << cut;
    EXPECT_EQ(out.status().code(), StatusCode::kDataLoss) << "cut at " << cut;
  }
}

TEST(LzssHardeningTest, BitFlipFuzzNeverCrashesOrReadsOutOfBounds) {
  // Flip every bit of a real stream: each variant must either decode (a
  // flip in a literal merely changes bytes) or fail with kDataLoss. Under
  // ASan this is also the no-OOB-read regression for the decoder.
  std::string valid = ValidMatchStream();
  size_t decoded = 0, rejected = 0;
  for (size_t i = 0; i < valid.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string bad = valid;
      bad[i] = static_cast<char>(bad[i] ^ (1 << bit));
      auto out = LzssDecompress(bad);
      if (out.ok()) {
        ++decoded;
      } else {
        ++rejected;
        EXPECT_EQ(out.status().code(), StatusCode::kDataLoss)
            << "flip bit " << bit << " of byte " << i << ": "
            << out.status().ToString();
      }
    }
  }
  // Flips in the checksummed-free LZSS format can survive (literal bytes),
  // but structural damage must dominate in a match-heavy stream.
  EXPECT_GT(rejected, 0u);
  EXPECT_GT(decoded, 0u);
}

TEST(LzssTest, VersionedDataCompressesWell) {
  // Two near-identical versions side by side: the second compresses almost
  // entirely as matches against the first — the property the compression
  // experiments rely on.
  Rng rng(9);
  std::string v1;
  for (int i = 0; i < 300; ++i) {
    v1 += "<rec><id>" + std::to_string(i) + "</id><val>" + rng.Word(5, 15) +
          "</val></rec>\n";
  }
  std::string v2 = v1;
  v2.replace(v2.find("<val>"), 5, "<VAL>");
  std::string both = v1 + v2;
  EXPECT_LT(LzssCompressedSize(both),
            LzssCompressedSize(v1) + LzssCompressedSize(v2) / 4);
}

// ------------------------------------------------------------- Container

xml::NodePtr MustParseXml(std::string_view text) {
  auto result = xml::Parse(text);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

TEST(ContainerTest, RoundTripSimple) {
  xml::NodePtr doc = MustParseXml(
      "<db><dept><name>finance</name><emp a='1'><fn>John</fn></emp></dept></db>");
  std::string blob = XmlContainerCompressor::Compress(*doc);
  auto back = XmlContainerCompressor::Decompress(blob);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(xml::ValueEqual(*doc, **back));
}

TEST(ContainerTest, RoundTripWithEntitiesAndAttrs) {
  xml::NodePtr doc = MustParseXml(
      "<a x='1 &amp; 2'><b>text &lt;here&gt;</b><c/><b>more</b></a>");
  auto back = XmlContainerCompressor::Decompress(
      XmlContainerCompressor::Compress(*doc));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(xml::ValueEqual(*doc, **back));
}

TEST(ContainerTest, RoundTripLargeGenerated) {
  Rng rng(13);
  xml::NodePtr root = xml::Node::Element("site");
  for (int i = 0; i < 500; ++i) {
    xml::Node* item = root->AddElement("item");
    item->SetAttr("id", "item" + std::to_string(i));
    item->AddElementWithText("name", rng.Word(4, 12));
    item->AddElementWithText("desc", rng.Word(20, 60));
    item->AddElementWithText("price", std::to_string(rng.Uniform(1, 999)));
  }
  std::string blob = XmlContainerCompressor::Compress(*root);
  auto back = XmlContainerCompressor::Decompress(blob);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(xml::ValueEqual(*root, **back));
}

TEST(ContainerTest, GroupingBeatsPlainLzssOnStructuredData) {
  // The XMill effect: grouping same-tag text makes structured XML compress
  // better than byte-serial LZSS of the document text.
  Rng rng(17);
  xml::NodePtr root = xml::Node::Element("db");
  std::vector<std::string> words = {"alpha", "beta", "gamma", "delta",
                                    "epsilon"};
  for (int i = 0; i < 2000; ++i) {
    xml::Node* rec = root->AddElement("rec");
    rec->AddElementWithText("num", std::to_string(100000 + i));
    rec->AddElementWithText("word", words[rng.Uniform(0, words.size() - 1)]);
    rec->AddElementWithText("seq", rng.Word(30, 30));
  }
  std::string text = xml::Serialize(*root);
  size_t plain = LzssCompressedSize(text);
  size_t grouped = XmlContainerCompressor::CompressedSize(*root);
  EXPECT_LT(grouped, plain);
}

TEST(ContainerTest, CompressTextParsesFirst) {
  auto blob = XmlContainerCompressor::CompressText("<a><b>x</b></a>");
  ASSERT_TRUE(blob.ok());
  auto back = XmlContainerCompressor::Decompress(*blob);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ((*back)->tag(), "a");
  EXPECT_FALSE(XmlContainerCompressor::CompressText("<broken").ok());
}

TEST(ContainerTest, DecompressRejectsGarbage) {
  EXPECT_FALSE(XmlContainerCompressor::Decompress("").ok());
  EXPECT_FALSE(XmlContainerCompressor::Decompress("XMC1garbage").ok());
}

TEST(ContainerTest, TimestampedArchiveXmlRoundTrips) {
  // Shape of the paper's archive XML (Fig. 5).
  xml::NodePtr doc = MustParseXml(
      "<T t='1-4'><root><db><dept><name>finance</name>"
      "<T t='3-4'><emp><fn>John</fn><ln>Doe</ln>"
      "<T t='3'><sal>90K</sal></T><T t='4'><sal>95K</sal></T>"
      "<tel>123-4567</tel></emp></T></dept></db></root></T>");
  auto back = XmlContainerCompressor::Decompress(
      XmlContainerCompressor::Compress(*doc));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(xml::ValueEqual(*doc, **back));
}

}  // namespace
}  // namespace xarch::compress
