// Key-space sharding: byte-parity of the sharded store against the
// unsharded backends it wraps (ingest / retrieve / Query / History /
// Diff), scatter/gather EXPLAIN, snapshot round-trips, per-shard metric
// cardinality, cross-shard reader liveness with a parked ingest, and a
// concurrency hammer for TSan.

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/archive.h"
#include "obs/metrics.h"
#include "synth/words.h"
#include "util/random.h"
#include "xarch/shard.h"
#include "xarch/sharded_store.h"
#include "xarch/store.h"
#include "xarch/store_registry.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xarch {
namespace {

constexpr const char* kKeys = R"(
(/, (db, {}))
(/db, (entry, {id}))
(/db/entry, (note, {}))
)";

keys::KeySpecSet MustSpec() {
  auto spec = keys::ParseKeySpecSet(kKeys);
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  return std::move(spec).value();
}

StoreOptions OptionsWithSpec() {
  StoreOptions options;
  options.spec = MustSpec();
  return options;
}

/// Versions of a small keyed database (same generator shape as
/// store_test): inserts, edits, and deletions so shards gain and lose
/// entries over time.
class WordsVersions {
 public:
  explicit WordsVersions(uint64_t seed) : rng_(seed) {
    for (int i = 0; i < 10; ++i) Insert();
  }

  std::string Next() {
    for (int m = 0; m < 2 && !entries_.empty(); ++m) {
      entries_[rng_.Uniform(0, entries_.size() - 1)].second =
          synth::Sentence(rng_, 3, 8);
    }
    Insert();
    if (entries_.size() > 6 && rng_.Uniform(0, 2) == 0) {
      entries_.erase(entries_.begin() + rng_.Uniform(0, entries_.size() - 1));
    }
    std::string xml = "<db>";
    for (const auto& [id, note] : entries_) {
      xml += "<entry><id>" + std::to_string(id) + "</id><note>" + note +
             "</note></entry>";
    }
    xml += "</db>";
    return xml;
  }

 private:
  void Insert() {
    entries_.emplace_back(next_id_++, synth::Sentence(rng_, 3, 8));
  }

  Rng rng_;
  int next_id_ = 1;
  std::vector<std::pair<int, std::string>> entries_;
};

/// Store-canonical text: keyed siblings in fingerprint order, default
/// pretty serialization — the form both stores reproduce byte-for-byte.
std::string Canonical(const std::string& text) {
  core::Archive archive(MustSpec());
  auto doc = xml::Parse(text);
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_TRUE(archive.AddVersion(**doc).ok());
  auto back = archive.RetrieveVersion(1);
  EXPECT_TRUE(back.ok());
  return xml::Serialize(**back);
}

std::vector<std::string> CanonicalVersions(uint64_t seed, int n) {
  WordsVersions gen(seed);
  std::vector<std::string> out;
  out.reserve(n);
  for (int v = 0; v < n; ++v) out.push_back(Canonical(gen.Next()));
  return out;
}

std::unique_ptr<Store> MustCreate(const std::string& backend,
                                  StoreOptions options) {
  auto store = StoreRegistry::Create(backend, std::move(options));
  EXPECT_TRUE(store.ok()) << backend << ": " << store.status().ToString();
  return std::move(store).value();
}

std::unique_ptr<Store> MakeSharded(const std::string& inner, size_t shards) {
  StoreOptions options = OptionsWithSpec();
  options.inner = inner;
  options.shards = shards;
  return MustCreate("sharded", std::move(options));
}

void IngestHalfAndHalf(Store& store, const std::vector<std::string>& texts) {
  // First half one at a time, second half in one batch: both ingest paths.
  const size_t half = texts.size() / 2;
  for (size_t i = 0; i < half; ++i) {
    ASSERT_TRUE(store.Append(texts[i]).ok());
  }
  std::vector<std::string_view> rest(texts.begin() + half, texts.end());
  ASSERT_TRUE(store.AppendBatch(rest).ok());
}

std::vector<core::KeyStep> EntryPath(int id) {
  return {{"db", {}}, {"entry", {{"id", std::to_string(id)}}}};
}

std::string QueryText(Store& store, const std::string& query) {
  StringSink sink;
  Status status = store.Query(query, sink);
  return status.ok() ? std::move(sink).Take()
                     : "status:" + std::to_string(int(status.code()));
}

// ------------------------------------------------------------ router

TEST(ShardRouterTest, RangePartitionIsMonotoneAndTotal)
{
  auto router = ShardRouter::Make(MustSpec(), 4, keys::AnnotateOptions{});
  ASSERT_TRUE(router.ok()) << router.status().ToString();
  size_t last = 0;
  for (int i = 0; i <= 64; ++i) {
    const uint64_t fp = i == 64 ? ~uint64_t{0} : (uint64_t{1} << i);
    const size_t shard = router->ShardOfFingerprint(fp);
    EXPECT_LT(shard, 4u);
    EXPECT_GE(shard, last);  // monotone in the fingerprint
    last = shard;
  }
  EXPECT_EQ(router->ShardOfFingerprint(0), 0u);
  EXPECT_EQ(router->ShardOfFingerprint(~uint64_t{0}), 3u);
}

TEST(ShardRouterTest, SplitRoutesEveryChildAndKeepsEveryShardAligned) {
  auto router = ShardRouter::Make(MustSpec(), 4, keys::AnnotateOptions{});
  ASSERT_TRUE(router.ok());
  const std::string doc = CanonicalVersions(7, 1)[0];
  auto parts = router->SplitDocument(doc);
  ASSERT_TRUE(parts.ok()) << parts.status().ToString();
  ASSERT_EQ(parts->size(), 4u);
  size_t children = 0;
  for (const std::string& part : *parts) {
    auto parsed = xml::Parse(part);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ((*parsed)->tag(), "db");
    children += (*parsed)->children().size();
  }
  auto whole = xml::Parse(doc);
  ASSERT_TRUE(whole.ok());
  EXPECT_EQ(children, (*whole)->children().size());
}

TEST(ShardRouterTest, RejectsEmptySpecAndBadShardCounts) {
  EXPECT_FALSE(
      ShardRouter::Make(keys::KeySpecSet(), 2, keys::AnnotateOptions{}).ok());
  EXPECT_FALSE(
      ShardRouter::Make(MustSpec(), 0, keys::AnnotateOptions{}).ok());
  EXPECT_FALSE(ShardRouter::Make(MustSpec(), ShardRouter::kMaxShards + 1,
                                 keys::AnnotateOptions{})
                   .ok());
}

// ------------------------------------------------------------- parity

class ShardedParityTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ShardedParityTest, IngestRetrieveHistoryDiffAndQueryMatchUnsharded) {
  const std::string inner = GetParam();
  const std::vector<std::string> versions = CanonicalVersions(11, 8);

  std::unique_ptr<Store> plain = MustCreate(inner, OptionsWithSpec());
  std::unique_ptr<Store> sharded = MakeSharded(inner, 3);
  IngestHalfAndHalf(*plain, versions);
  IngestHalfAndHalf(*sharded, versions);

  ASSERT_EQ(plain->version_count(), sharded->version_count());
  const Version count = plain->version_count();

  // Retrieval: every version byte-identical, plus the error contract past
  // the end and at zero.
  for (Version v = 1; v <= count; ++v) {
    auto expect = plain->Retrieve(v);
    auto got = sharded->Retrieve(v);
    ASSERT_TRUE(expect.ok() && got.ok());
    EXPECT_EQ(*expect, *got) << "version " << v;
    StringSink streamed;
    ASSERT_TRUE(sharded->RetrieveTo(v, streamed).ok());
    EXPECT_EQ(*expect, std::move(streamed).Take());
  }
  for (Version v : {Version{0}, Version{count + 1}}) {
    EXPECT_EQ(plain->Retrieve(v).status().code(),
              sharded->Retrieve(v).status().code());
  }

  // History: existing, deleted, and never-existing keys agree (value and
  // status code both).
  for (int id : {1, 2, 5, 9, 11, 999}) {
    auto expect = plain->History(EntryPath(id));
    auto got = sharded->History(EntryPath(id));
    ASSERT_EQ(expect.ok(), got.ok()) << "id " << id;
    if (expect.ok()) {
      EXPECT_EQ(expect->ToString(), got->ToString()) << "id " << id;
    } else {
      EXPECT_EQ(expect.status().code(), got.status().code()) << "id " << id;
    }
  }

  // Diff: full range, adjacent pairs, and the out-of-range error message.
  for (auto [from, to] : std::vector<std::pair<Version, Version>>{
           {1, count}, {2, 3}, {count, 1}}) {
    auto expect = plain->DiffVersions(from, to);
    auto got = sharded->DiffVersions(from, to);
    ASSERT_EQ(expect.ok(), got.ok());
    if (!expect.ok()) continue;
    ASSERT_EQ(expect->size(), got->size());
    for (size_t i = 0; i < expect->size(); ++i) {
      EXPECT_EQ((*expect)[i].kind, (*got)[i].kind) << i;
      EXPECT_EQ((*expect)[i].path, (*got)[i].path) << i;
    }
  }
  {
    auto expect = plain->DiffVersions(0, count + 1);
    auto got = sharded->DiffVersions(0, count + 1);
    ASSERT_FALSE(expect.ok() || got.ok());
    EXPECT_EQ(expect.status().code(), got.status().code());
    if (expect.status().code() != StatusCode::kUnimplemented) {
      // Unimplemented messages embed the store's own name; range errors
      // must match byte-for-byte.
      EXPECT_EQ(expect.status().message(), got.status().message());
    }
  }

  // XAQL: one query of every temporal kind, routed and scattered shapes.
  const std::vector<std::string> queries = {
      "/db/entry[id=\"3\"] @ version 2",
      "/db/entry[id=\"999\"] @ version 1",
      "/db @ versions 1.." + std::to_string(count),
      "/db/entry[id=\"5\"] history",
      "/db/entry[id=\"4\"]/note @ version " + std::to_string(count),
      "/db diff 1 " + std::to_string(count),
  };
  for (const std::string& query : queries) {
    EXPECT_EQ(QueryText(*plain, query), QueryText(*sharded, query))
        << "query: " << query;
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, ShardedParityTest,
                         ::testing::Values("archive", "incr-diff"));

TEST(ShardedStoreTest, ShardCountOneMatchesUnshardedToo) {
  const std::vector<std::string> versions = CanonicalVersions(3, 4);
  std::unique_ptr<Store> plain = MustCreate("archive", OptionsWithSpec());
  std::unique_ptr<Store> sharded = MakeSharded("archive", 1);
  IngestHalfAndHalf(*plain, versions);
  IngestHalfAndHalf(*sharded, versions);
  for (Version v = 1; v <= 4; ++v) {
    EXPECT_EQ(*plain->Retrieve(v), *sharded->Retrieve(v));
  }
}

// ------------------------------------------------------------- explain

TEST(ShardedStoreTest, ExplainShowsScatterPlanAndPerShardProbes) {
  std::unique_ptr<Store> sharded = MakeSharded("archive", 3);
  const std::vector<std::string> versions = CanonicalVersions(5, 4);
  IngestHalfAndHalf(*sharded, versions);

  StringSink sink;
  ASSERT_TRUE(sharded->Query("explain /db @ versions 1..4", sink).ok());
  const std::string report = std::move(sink).Take();
  EXPECT_NE(report.find("access: shard-scatter"), std::string::npos) << report;
  EXPECT_NE(report.find("shards:"), std::string::npos) << report;
  EXPECT_NE(report.find("shard 0: probes="), std::string::npos) << report;
  EXPECT_NE(report.find("shard 2: probes="), std::string::npos) << report;
  EXPECT_NE(report.find("merge sub-documents in key order"),
            std::string::npos)
      << report;
}

// ------------------------------------------------------- persistence

TEST(ShardedStoreTest, SnapshotRoundTripsThroughTheRegistry) {
  std::unique_ptr<Store> sharded = MakeSharded("archive", 4);
  const std::vector<std::string> versions = CanonicalVersions(13, 6);
  IngestHalfAndHalf(*sharded, versions);

  auto bytes = sharded->SaveToBytes();
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
  auto reopened = StoreRegistry::Global().OpenFromBytes(*bytes, {});
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->name(), "sharded(archive)x4");
  ASSERT_EQ((*reopened)->version_count(), sharded->version_count());
  for (Version v = 1; v <= sharded->version_count(); ++v) {
    EXPECT_EQ(*sharded->Retrieve(v), *(*reopened)->Retrieve(v));
  }
  // And the reopened store keeps ingesting in the right key ranges.
  WordsVersions gen(13);
  for (int i = 0; i < 6; ++i) (void)gen.Next();
  const std::string next = Canonical(gen.Next());
  ASSERT_TRUE((*reopened)->Append(next).ok());
  EXPECT_EQ(*(*reopened)->Retrieve(7), next);
}

// ---------------------------------------------------------- metrics

TEST(ShardedStoreTest, PerShardMetricFamiliesCoverEveryShard) {
  std::unique_ptr<Store> sharded = MakeSharded("archive", 3);
  const std::string text = obs::Registry::Default().EncodeText();
  for (const char* family :
       {"xarch_shard_ingest_documents_total", "xarch_shard_scatter_reads_total",
        "xarch_shard_routed_queries_total"}) {
    for (int shard = 0; shard < 3; ++shard) {
      const std::string series = std::string(family) + "{shard=\"" +
                                 std::to_string(shard) + "\"}";
      EXPECT_NE(text.find(series), std::string::npos) << series;
    }
  }
}

// ------------------------------------------------- reader liveness

/// A Store wrapper whose ingest parks on a latch while holding the shard's
/// writer lock — the "long writer on one shard" of the glibc
/// reader-preference caveat (docs/CONCURRENCY notes in SHARDING.md).
class BlockingStore final : public Store {
 public:
  explicit BlockingStore(std::unique_ptr<Store> inner)
      : inner_(std::move(inner)) {}

  std::string name() const override { return inner_->name(); }
  Capabilities capabilities() const override {
    return inner_->capabilities();
  }

  void Block() {
    std::lock_guard<std::mutex> lock(mu_);
    blocked_ = true;
  }
  void Unblock() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      blocked_ = false;
    }
    cv_.notify_all();
  }
  bool parked() const { return parked_.load(); }

 protected:
  Status AppendImpl(std::string_view text) override {
    Park();
    return inner_->Append(text);
  }
  Status AppendBatchImpl(const std::vector<std::string_view>& t) override {
    Park();
    return inner_->AppendBatch(t);
  }
  StatusOr<std::string> RetrieveImpl(Version v) override {
    return inner_->Retrieve(v);
  }
  StatusOr<VersionSet> HistoryImpl(
      const std::vector<core::KeyStep>& path) override {
    return inner_->History(path);
  }
  StatusOr<std::vector<core::Change>> DiffVersionsImpl(Version from,
                                                       Version to) override {
    return inner_->DiffVersions(from, to);
  }
  Status QueryImpl(std::string_view query, Sink& sink,
                   obs::Trace* trace) override {
    return inner_->Query(query, sink, trace);
  }
  Version VersionCountImpl() const override {
    return inner_->version_count();
  }
  StoreStats BackendStats() const override { return inner_->Stats(); }
  std::string StoredBytesImpl() const override {
    return inner_->StoredBytes();
  }
  StatusOr<std::string> SnapshotBytesImpl() const override {
    return inner_->SaveToBytes();
  }

 private:
  void Park() {
    std::unique_lock<std::mutex> lock(mu_);
    parked_.store(true);
    cv_.wait(lock, [&] { return !blocked_; });
    parked_.store(false);
  }

  std::unique_ptr<Store> inner_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool blocked_ = false;
  std::atomic<bool> parked_{false};
};

TEST(ShardedStoreTest, ReadersOfOtherShardsStayLiveUnderAParkedIngest) {
  auto router = ShardRouter::Make(MustSpec(), 2, keys::AnnotateOptions{});
  ASSERT_TRUE(router.ok());

  // Two ids whose candidate labels pin exactly one shard each, on
  // DIFFERENT shards (deterministic: fingerprints are content hashes).
  int blocked_id = 0, live_id = 0;
  size_t blocked_shard = 0;
  for (int id = 1; id < 400 && (blocked_id == 0 || live_id == 0); ++id) {
    core::KeyStep step{"entry", {{"id", std::to_string(id)}}};
    const std::vector<size_t> shards = router->CandidateShards(step);
    if (shards.size() != 1) continue;
    if (blocked_id == 0) {
      blocked_id = id;
      blocked_shard = shards[0];
    } else if (shards[0] != blocked_shard) {
      live_id = id;
    }
  }
  ASSERT_NE(blocked_id, 0);
  ASSERT_NE(live_id, 0);

  std::vector<std::unique_ptr<Store>> shards;
  BlockingStore* blocking = nullptr;
  for (size_t s = 0; s < 2; ++s) {
    auto inner = MustCreate("archive", OptionsWithSpec());
    if (s == blocked_shard) {
      auto wrapped = std::make_unique<BlockingStore>(std::move(inner));
      blocking = wrapped.get();
      shards.push_back(std::move(wrapped));
    } else {
      shards.push_back(std::move(inner));
    }
  }
  auto made = ShardedStore::Make(std::move(*router), std::move(shards), 0);
  ASSERT_TRUE(made.ok()) << made.status().ToString();
  ShardedStore& store = **made;

  const std::string v1 = Canonical(
      "<db><entry><id>" + std::to_string(blocked_id) +
      "</id><note>a</note></entry><entry><id>" + std::to_string(live_id) +
      "</id><note>b</note></entry></db>");
  ASSERT_TRUE(store.Append(v1).ok());

  blocking->Block();
  std::thread writer([&] {
    EXPECT_TRUE(store.Append(v1).ok());  // parks inside the blocked shard
  });
  while (!blocking->parked()) std::this_thread::yield();

  // The writer holds the blocked shard's lock mid-ingest. Reads routed to
  // the OTHER shard must complete; the commit point still reads 1.
  auto history = store.History(EntryPath(live_id));
  ASSERT_TRUE(history.ok()) << history.status().ToString();
  EXPECT_TRUE(history->Contains(1));
  const std::string routed = QueryText(
      store,
      "/db/entry[id=\"" + std::to_string(live_id) + "\"] @ version 1");
  EXPECT_NE(routed.find("<entry>"), std::string::npos) << routed;
  EXPECT_EQ(store.version_count(), 1u);

  blocking->Unblock();
  writer.join();
  EXPECT_EQ(store.version_count(), 2u);
}

// --------------------------------------------------------- concurrency

TEST(ShardedConcurrencyTest, ParallelReadersAndWriterHammar) {
  const std::vector<std::string> versions = CanonicalVersions(17, 10);
  std::unique_ptr<Store> sharded = MakeSharded("archive", 4);
  std::vector<std::string_view> first(versions.begin(), versions.begin() + 4);
  ASSERT_TRUE(sharded->AppendBatch(first).ok());

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::mutex fail_mu;
  std::string first_failure;
  auto fail = [&](const Status& status) {
    failures.fetch_add(1);
    std::lock_guard<std::mutex> lock(fail_mu);
    if (first_failure.empty()) first_failure = status.ToString();
  };
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(100 + t);
      while (!stop.load()) {
        const Version count = sharded->version_count();
        const Version v = 1 + rng.Uniform(0, static_cast<int>(count) - 1);
        if (auto got = sharded->Retrieve(v); !got.ok()) fail(got.status());
        StringSink sink;
        // NotFound is a legal answer for ids absent from version v;
        // anything else under concurrent ingest is a bug.
        if (Status status = sharded->Query(
                "/db/entry[id=\"" + std::to_string(1 + rng.Uniform(0, 12)) +
                    "\"] @ version " + std::to_string(v),
                sink);
            !status.ok() && status.code() != StatusCode::kNotFound) {
          fail(status);
        }
        if (!sharded->History(EntryPath(1 + rng.Uniform(0, 12))).ok()) {
          // NotFound is a legal answer for absent ids; anything else is not.
        }
      }
    });
  }
  for (size_t v = 4; v < versions.size(); ++v) {
    ASSERT_TRUE(sharded->Append(versions[v]).ok());
  }
  stop.store(true);
  for (std::thread& reader : readers) reader.join();
  EXPECT_EQ(failures.load(), 0) << first_failure;

  // After the dust settles: full parity with a serial unsharded ingest.
  std::unique_ptr<Store> plain = MustCreate("archive", OptionsWithSpec());
  std::vector<std::string_view> all(versions.begin(), versions.end());
  ASSERT_TRUE(plain->AppendBatch(all).ok());
  for (Version v = 1; v <= plain->version_count(); ++v) {
    EXPECT_EQ(*plain->Retrieve(v), *sharded->Retrieve(v));
  }
}

}  // namespace
}  // namespace xarch
