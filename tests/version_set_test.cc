#include <gtest/gtest.h>

#include <set>

#include "util/random.h"
#include "util/version_set.h"

namespace xarch {
namespace {

VersionSet FromList(std::initializer_list<Version> versions) {
  VersionSet s;
  for (Version v : versions) s.Add(v);
  return s;
}

TEST(VersionSetTest, EmptyByDefault) {
  VersionSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.Count(), 0u);
  EXPECT_EQ(s.ToString(), "");
  EXPECT_FALSE(s.Contains(1));
}

TEST(VersionSetTest, SingleAndInterval) {
  EXPECT_EQ(VersionSet::Single(5).ToString(), "5");
  EXPECT_EQ(VersionSet::Interval(1, 4).ToString(), "1-4");
  EXPECT_EQ(VersionSet::Interval(4, 1).Count(), 0u);  // empty when lo > hi
}

TEST(VersionSetTest, PaperExample) {
  // "[1-3,5,7-9] denotes the set {1,2,3,5,7,8,9}" (Sec. 2).
  auto s = VersionSet::Parse("1-3,5,7-9");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->Count(), 7u);
  for (Version v : {1u, 2u, 3u, 5u, 7u, 8u, 9u}) EXPECT_TRUE(s->Contains(v));
  for (Version v : {4u, 6u, 10u}) EXPECT_FALSE(s->Contains(v));
  EXPECT_EQ(s->ToString(), "1-3,5,7-9");
  EXPECT_EQ(s->IntervalCount(), 3u);
  EXPECT_EQ(s->Min(), 1u);
  EXPECT_EQ(s->Max(), 9u);
}

TEST(VersionSetTest, ParseRejectsMalformed) {
  EXPECT_FALSE(VersionSet::Parse("a-b").ok());
  EXPECT_FALSE(VersionSet::Parse("3-1").ok());
  EXPECT_FALSE(VersionSet::Parse("1-3,2").ok());   // overlapping
  EXPECT_FALSE(VersionSet::Parse("1,2").ok());     // non-canonical (adjacent)
  EXPECT_FALSE(VersionSet::Parse("5,3").ok());     // unsorted
  EXPECT_TRUE(VersionSet::Parse("").ok());
  EXPECT_TRUE(VersionSet::Parse("1,3").ok());
}

TEST(VersionSetTest, ParseOverflowAndEmptyRangeHandling) {
  // The exact uint32 boundary is representable; one past it is not, and
  // no digit string may wrap back into range (the check runs per digit).
  EXPECT_TRUE(VersionSet::Parse("4294967295").ok());
  EXPECT_FALSE(VersionSet::Parse("4294967296").ok());
  EXPECT_FALSE(VersionSet::Parse("99999999999999999999").ok());   // > 2^64
  EXPECT_FALSE(VersionSet::Parse("18446744073709551617").ok());   // 2^64+1
  EXPECT_FALSE(VersionSet::Parse("1-4294967296").ok());
  // Empty / half-open ranges.
  EXPECT_FALSE(VersionSet::Parse("3-").ok());
  EXPECT_FALSE(VersionSet::Parse("-3").ok());
  EXPECT_FALSE(VersionSet::Parse("-").ok());
  EXPECT_FALSE(VersionSet::Parse(",").ok());
  EXPECT_FALSE(VersionSet::Parse("1,,3").ok());
  // A single-point "range" is fine and canonicalizes.
  auto point = VersionSet::Parse("7-7");
  ASSERT_TRUE(point.ok());
  EXPECT_EQ(point->ToString(), "7");
  EXPECT_EQ(point->Count(), 1u);
}

TEST(VersionSetTest, AccretiveAddExtendsInterval) {
  VersionSet s;
  for (Version v = 1; v <= 100; ++v) s.Add(v);
  EXPECT_EQ(s.IntervalCount(), 1u);
  EXPECT_EQ(s.ToString(), "1-100");
}

TEST(VersionSetTest, AddWithGapsAndMerges) {
  VersionSet s = FromList({1, 3, 5});
  EXPECT_EQ(s.ToString(), "1,3,5");
  s.Add(2);  // merges 1 and 3
  EXPECT_EQ(s.ToString(), "1-3,5");
  s.Add(4);
  EXPECT_EQ(s.ToString(), "1-5");
  s.Add(3);  // idempotent
  EXPECT_EQ(s.ToString(), "1-5");
}

TEST(VersionSetTest, RemoveSplitsIntervals) {
  VersionSet s = VersionSet::Interval(1, 5);
  s.Remove(3);
  EXPECT_EQ(s.ToString(), "1-2,4-5");
  s.Remove(1);
  EXPECT_EQ(s.ToString(), "2,4-5");
  s.Remove(5);
  EXPECT_EQ(s.ToString(), "2,4");
  s.Remove(9);  // no-op
  EXPECT_EQ(s.ToString(), "2,4");
  s.Remove(2);
  s.Remove(4);
  EXPECT_TRUE(s.empty());
}

TEST(VersionSetTest, UnionWith) {
  VersionSet a = *VersionSet::Parse("1-3,8");
  VersionSet b = *VersionSet::Parse("2-5,7");
  a.UnionWith(b);
  EXPECT_EQ(a.ToString(), "1-5,7-8");
}

TEST(VersionSetTest, Minus) {
  VersionSet a = *VersionSet::Parse("1-10");
  EXPECT_EQ(a.Minus(*VersionSet::Parse("3-5,9")).ToString(), "1-2,6-8,10");
  EXPECT_EQ(a.Minus(a).ToString(), "");
  EXPECT_EQ(a.Minus(VersionSet()).ToString(), "1-10");
  // The Nested Merge idiom T - {i}.
  EXPECT_EQ(a.Minus(VersionSet::Single(10)).ToString(), "1-9");
}

TEST(VersionSetTest, Intersect) {
  VersionSet a = *VersionSet::Parse("1-5,8-10");
  VersionSet b = *VersionSet::Parse("4-9");
  EXPECT_EQ(a.IntersectWith(b).ToString(), "4-5,8-9");
  EXPECT_TRUE(a.IntersectWith(VersionSet()).empty());
}

TEST(VersionSetTest, SupersetInvariant) {
  VersionSet parent = *VersionSet::Parse("1-10");
  EXPECT_TRUE(parent.IsSupersetOf(*VersionSet::Parse("2-4,7")));
  EXPECT_TRUE(parent.IsSupersetOf(VersionSet()));
  EXPECT_FALSE(parent.IsSupersetOf(*VersionSet::Parse("5-11")));
  EXPECT_FALSE(VersionSet().IsSupersetOf(VersionSet::Single(1)));
  EXPECT_TRUE(VersionSet().IsSupersetOf(VersionSet()));
}

TEST(VersionSetTest, RandomizedAgainstStdSet) {
  Rng rng(31);
  VersionSet s;
  std::set<Version> ref;
  for (int step = 0; step < 2000; ++step) {
    Version v = static_cast<Version>(rng.Uniform(1, 60));
    if (rng.Chance(0.7)) {
      s.Add(v);
      ref.insert(v);
    } else {
      s.Remove(v);
      ref.erase(v);
    }
    ASSERT_EQ(s.Count(), ref.size());
    if (step % 50 == 0) {
      for (Version check = 1; check <= 61; ++check) {
        ASSERT_EQ(s.Contains(check), ref.count(check) > 0) << "v=" << check;
      }
      // Round-trip through text.
      auto parsed = VersionSet::Parse(s.ToString());
      ASSERT_TRUE(parsed.ok());
      ASSERT_EQ(*parsed, s);
    }
  }
}

TEST(VersionSetTest, RandomizedSetAlgebra) {
  Rng rng(37);
  for (int trial = 0; trial < 100; ++trial) {
    std::set<Version> ra, rb;
    VersionSet a, b;
    for (int i = 0; i < 30; ++i) {
      Version v = static_cast<Version>(rng.Uniform(1, 40));
      if (rng.Chance(0.5)) {
        a.Add(v);
        ra.insert(v);
      } else {
        b.Add(v);
        rb.insert(v);
      }
    }
    VersionSet u = a;
    u.UnionWith(b);
    VersionSet m = a.Minus(b);
    VersionSet x = a.IntersectWith(b);
    for (Version v = 1; v <= 41; ++v) {
      ASSERT_EQ(u.Contains(v), ra.count(v) > 0 || rb.count(v) > 0);
      ASSERT_EQ(m.Contains(v), ra.count(v) > 0 && rb.count(v) == 0);
      ASSERT_EQ(x.Contains(v), ra.count(v) > 0 && rb.count(v) > 0);
    }
    bool superset = true;
    for (Version v : rb) superset = superset && ra.count(v) > 0;
    ASSERT_EQ(a.IsSupersetOf(b), superset);
  }
}

}  // namespace
}  // namespace xarch
