// Concurrency: util::ThreadPool semantics, snapshot-isolated readers under
// interleaved ingest (byte-identical to a serial run, across backends), the
// ingest-time index publish (the PR's lazy-rebuild race regression), atomic
// query counters, and the parallel range executor's deterministic merge.
//
// These tests are the ThreadSanitizer workload of the CI tsan job: every
// assertion here is also a data-race probe when built with
// -fsanitize=thread.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/archive.h"
#include "index/archive_index.h"
#include "keys/key_spec.h"
#include "query/evaluator.h"
#include "query/parser.h"
#include "query/planner.h"
#include "util/thread_pool.h"
#include "xarch/store.h"
#include "xarch/store_registry.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xarch {
namespace {

// ------------------------------------------------------------ ThreadPool

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  util::ThreadPool pool(3);
  constexpr size_t kN = 500;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ZeroWorkerPoolRunsInline) {
  util::ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 0u);
  std::vector<int> order;
  pool.ParallelFor(5, [&](size_t i) { order.push_back(static_cast<int>(i)); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
  bool ran = false;
  pool.Submit([&] { ran = true; });
  EXPECT_TRUE(ran);  // inline: done before Submit returns
}

TEST(ThreadPoolTest, PoolIsReusableAcrossManyForLoops) {
  util::ThreadPool pool(2);
  std::atomic<size_t> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.ParallelFor(20, [&](size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 50u * 20u);
}

TEST(ThreadPoolTest, ParallelForRethrowsTheFirstBodyException) {
  util::ThreadPool pool(2);
  EXPECT_THROW(
      pool.ParallelFor(64,
                       [&](size_t i) {
                         if (i == 13) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  // The pool survives the failed loop.
  std::atomic<size_t> count{0};
  pool.ParallelFor(8, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 8u);
}

TEST(ThreadPoolTest, ConcurrentParallelForCallsShareTheWorkers) {
  util::ThreadPool pool(3);
  std::atomic<size_t> total{0};
  std::vector<std::thread> callers;
  for (int t = 0; t < 4; ++t) {
    callers.emplace_back([&] {
      pool.ParallelFor(100, [&](size_t) { total.fetch_add(1); });
    });
  }
  for (auto& caller : callers) caller.join();
  EXPECT_EQ(total.load(), 4u * 100u);
}

// ------------------------------------------------------------- fixtures

constexpr const char* kKeys = R"(
(/, (db, {}))
(/db, (entry, {id}))
(/db/entry, (note, {}))
)";

keys::KeySpecSet MustSpec() {
  auto spec = keys::ParseKeySpecSet(kKeys);
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  return std::move(spec).value();
}

StoreOptions OptionsWithSpec(bool use_index = false) {
  StoreOptions options;
  options.spec = MustSpec();
  options.checkpoint_every = 3;
  options.use_index = use_index;
  return options;
}

/// Store-canonical serialization of a version text (keyed siblings in
/// fingerprint order), so Retrieve round-trips byte-for-byte everywhere.
std::string Canonical(const std::string& text) {
  core::Archive archive(MustSpec());
  auto doc = xml::Parse(text);
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_TRUE(archive.AddVersion(**doc).ok());
  auto back = archive.RetrieveVersion(1);
  EXPECT_TRUE(back.ok());
  return xml::Serialize(**back);
}

/// A deterministic churning corpus: entry e exists at version v iff
/// (v + e) % 3 != 0, and its note text depends on both — so histories are
/// distinct per entry and range queries mix full and empty versions.
std::vector<std::string> ChurningVersions(int count) {
  std::vector<std::string> versions;
  for (int v = 1; v <= count; ++v) {
    std::string body = "<db>";
    for (int e = 1; e <= 8; ++e) {
      if ((v + e) % 3 == 0) continue;
      body += "<entry><id>" + std::to_string(e) + "</id><note>n" +
              std::to_string(v) + "-" + std::to_string(e) + "</note></entry>";
    }
    body += "</db>";
    versions.push_back(Canonical(body));
  }
  return versions;
}

struct BackendParam {
  const char* label;
  const char* backend;
  bool use_index;
};

std::unique_ptr<Store> MakeEmptyStore(const BackendParam& param) {
  auto store =
      StoreRegistry::Create(param.backend, OptionsWithSpec(param.use_index));
  EXPECT_TRUE(store.ok()) << param.backend << ": "
                          << store.status().ToString();
  return std::move(store).value();
}

// ------------------------------- concurrent readers, quiescent store

class ConcurrentReadTest : public ::testing::TestWithParam<BackendParam> {};

/// N reader threads drive every retrieval path at once on a fully-ingested
/// store; every thread must see bytes identical to the serial expectation.
TEST_P(ConcurrentReadTest, ParallelReadersMatchSerialByteForByte) {
  const BackendParam param = GetParam();
  const std::vector<std::string> versions = ChurningVersions(9);
  auto store = MakeEmptyStore(param);
  for (const std::string& text : versions) {
    ASSERT_TRUE(store->Append(text).ok());
  }

  // Serial expectations, taken from the same store before threading.
  std::vector<std::string> expected_retrieve;
  for (Version v = 1; v <= versions.size(); ++v) {
    auto got = store->Retrieve(v);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    expected_retrieve.push_back(*got);
  }
  const std::string range_query = "/db/entry[id=\"1\"] @ versions 1..9";
  const std::string history_query = "/db/entry[id=\"2\"] history";
  StringSink range_sink, history_sink;
  ASSERT_TRUE(store->Query(range_query, range_sink).ok());
  ASSERT_TRUE(store->Query(history_query, history_sink).ok());
  const std::string expected_range = range_sink.data();
  const std::string expected_history = history_sink.data();

  constexpr int kThreads = 6;
  constexpr int kRounds = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < kThreads; ++t) {
    readers.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        const Version v =
            static_cast<Version>((t + round) % versions.size() + 1);
        auto got = store->Retrieve(v);
        if (!got.ok() || *got != expected_retrieve[v - 1]) {
          failures.fetch_add(1);
        }
        StringSink r, h;
        if (!store->Query(range_query, r).ok() || r.data() != expected_range) {
          failures.fetch_add(1);
        }
        if (!store->Query(history_query, h).ok() ||
            h.data() != expected_history) {
          failures.fetch_add(1);
        }
        (void)store->Stats();
      }
    });
  }
  for (auto& reader : readers) reader.join();
  EXPECT_EQ(failures.load(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    Backends, ConcurrentReadTest,
    ::testing::Values(BackendParam{"archive", "archive", false},
                      BackendParam{"archive_indexed", "archive", true},
                      BackendParam{"archive_weave", "archive-weave", false},
                      BackendParam{"incr_diff", "incr-diff", false},
                      BackendParam{"full_copy", "full-copy", false},
                      BackendParam{"checkpoint_diff", "checkpoint-diff",
                                   false},
                      BackendParam{"extmem", "extmem", false}),
    [](const auto& info) { return std::string(info.param.label); });

// --------------------------- readers during interleaved ingest

class IngestRaceTest : public ::testing::TestWithParam<BackendParam> {};

/// A writer appends versions while reader threads hammer every retrieval
/// path. Snapshot isolation: whatever version_count a reader observes, the
/// bytes of any version at or below it equal the serial expectation —
/// never a torn or half-merged document.
TEST_P(IngestRaceTest, ReadersSeeOnlyFullyIngestedVersions) {
  const BackendParam param = GetParam();
  const int kVersions = 12;
  const std::vector<std::string> versions = ChurningVersions(kVersions);

  // Serial reference: the same backend fed the same corpus up front.
  std::vector<std::string> expected;
  {
    auto reference = MakeEmptyStore(param);
    for (const std::string& text : versions) {
      ASSERT_TRUE(reference->Append(text).ok());
    }
    for (Version v = 1; v <= kVersions; ++v) {
      auto got = reference->Retrieve(v);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      expected.push_back(*got);
    }
  }

  auto store = MakeEmptyStore(param);
  ASSERT_TRUE(store->Append(versions[0]).ok());  // readers always have v1

  // Readers run a FIXED number of rounds and yield between them: looping
  // "until the writer finishes" would livelock on reader-preferring
  // rwlock implementations (continuous shared acquisitions starve the
  // writer's exclusive lock, so it never finishes).
  std::atomic<int> failures{0};
  constexpr int kReaders = 4;
  constexpr int kReaderRounds = 24;
  std::vector<std::thread> threads;
  threads.emplace_back([&] {
    for (int v = 1; v < kVersions; ++v) {
      if (!store->Append(versions[v]).ok()) failures.fetch_add(1);
      std::this_thread::yield();
    }
  });
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kReaderRounds; ++round) {
        const Version n = store->version_count();
        if (n == 0) continue;
        const Version v = static_cast<Version>((t + round) % n + 1);
        auto got = store->Retrieve(v);
        if (!got.ok() || *got != expected[v - 1]) failures.fetch_add(1);
        // Temporal reads under ingest: must succeed and parse cleanly
        // (their content legitimately grows with n).
        StringSink h;
        if (store->Has(kQuery) &&
            !store->Query("/db/entry[id=\"1\"] history", h).ok()) {
          failures.fetch_add(1);
        }
        (void)store->Stats();
        std::this_thread::yield();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(store->version_count(), static_cast<Version>(kVersions));
  // The concurrent run converges to the serial bytes.
  for (Version v = 1; v <= kVersions; ++v) {
    auto got = store->Retrieve(v);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, expected[v - 1]) << "v" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Backends, IngestRaceTest,
    ::testing::Values(BackendParam{"archive_indexed", "archive", true},
                      BackendParam{"full_copy", "full-copy", false},
                      BackendParam{"incr_diff", "incr-diff", false},
                      BackendParam{"extmem", "extmem", false}),
    [](const auto& info) { return std::string(info.param.label); });

// -------------------------------- index publish (regression)

/// Regression for the lazy-rebuild race: the ArchiveIndex used to be
/// rebuilt inside const read operations on first use after ingest, so
/// concurrent readers raced on the index pointer swap. It is now
/// (re)published by the ingest path under the writer lock; this test is
/// the TSan probe for that — History/Query readers against an indexed
/// archive store during continuous ingest.
TEST(IndexPublishTest, ConcurrentHistoryDuringIngestUsesCurrentIndex) {
  const int kVersions = 10;
  const std::vector<std::string> versions = ChurningVersions(kVersions);
  auto store =
      MakeEmptyStore(BackendParam{"archive_indexed", "archive", true});
  ASSERT_TRUE(store->Append(versions[0]).ok());

  const std::vector<core::KeyStep> path = {
      {"db", {}}, {"entry", {{"id", "1"}}}};
  // Fixed reader rounds + yields, for the same writer-starvation reason
  // as IngestRaceTest.
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.emplace_back([&] {
    for (int v = 1; v < kVersions; ++v) {
      if (!store->Append(versions[v]).ok()) failures.fetch_add(1);
      std::this_thread::yield();
    }
  });
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < 24; ++round) {
        auto history = store->History(path);
        if (!history.ok()) failures.fetch_add(1);
        StringSink sink;
        if (!store->Query("/db/entry[id=\"1\"] history", sink).ok()) {
          failures.fetch_add(1);
        }
        std::this_thread::yield();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);

  // After the dust settles the index answers exactly like the archive
  // walk: entry 1 exists whenever (v + 1) % 3 != 0.
  auto history = store->History(path);
  ASSERT_TRUE(history.ok());
  VersionSet expected;
  for (int v = 1; v <= kVersions; ++v) {
    if ((v + 1) % 3 != 0) expected.Add(static_cast<Version>(v));
  }
  EXPECT_EQ(history->ToString(), expected.ToString());
}

// ----------------------------------- atomic query counters

TEST(StatsAtomicityTest, ConcurrentQueriesAreAllCounted) {
  auto store = MakeEmptyStore(BackendParam{"archive", "archive", false});
  for (const std::string& text : ChurningVersions(6)) {
    ASSERT_TRUE(store->Append(text).ok());
  }
  const uint64_t before = store->Stats().queries;
  constexpr int kThreads = 8;
  constexpr int kQueriesPerThread = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int q = 0; q < kQueriesPerThread; ++q) {
        CountingSink sink;
        if (!store->Query("/db/entry[id=\"2\"] history", sink).ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  // Non-atomic accumulation would drop increments under contention; the
  // atomics make the count exact, not approximate.
  EXPECT_EQ(store->Stats().queries, before + kThreads * kQueriesPerThread);
}

// ------------------------------- parallel range executor

/// The executor must produce bytes identical to the serial evaluation and
/// the same probe totals, for both archive access paths — regardless of
/// how versions land on workers (a pool is forced so this holds even on a
/// single-CPU machine where Shared() has no workers).
TEST(ParallelRangeTest, ParallelArchiveRangeMatchesSerialExactly) {
  const std::vector<std::string> versions = ChurningVersions(10);
  core::Archive archive(MustSpec());
  for (const std::string& text : versions) {
    auto doc = xml::Parse(text);
    ASSERT_TRUE(doc.ok());
    ASSERT_TRUE(archive.AddVersion(**doc).ok());
  }
  index::ArchiveIndex index(archive);
  util::ThreadPool pool(3);

  for (const std::string& text :
       {std::string("/db/entry[id=\"1\"] @ versions 1..10"),
        std::string("/db/entry[*] @ versions 2..9"),
        std::string("/db @ versions 1..10")}) {
    auto ast = query::Parse(text);
    ASSERT_TRUE(ast.ok()) << text;
    for (const index::ArchiveIndex* idx :
         {static_cast<const index::ArchiveIndex*>(nullptr),
          static_cast<const index::ArchiveIndex*>(&index)}) {
      query::Plan plan = query::MakePlan(
          *ast, idx != nullptr ? query::Access::kArchiveIndexed
                               : query::Access::kArchiveScan);

      StringSink serial_sink;
      query::EvalResult serial_result;
      ASSERT_TRUE(query::Evaluate(plan, archive, idx, serial_sink,
                                  &serial_result)
                      .ok())
          << text;

      query::EvalOptions options;
      options.pool = &pool;
      options.min_parallel_versions = 2;
      StringSink parallel_sink;
      query::EvalResult parallel_result;
      ASSERT_TRUE(query::Evaluate(plan, archive, idx, parallel_sink,
                                  &parallel_result, options)
                      .ok())
          << text;

      EXPECT_EQ(parallel_sink.data(), serial_sink.data()) << text;
      EXPECT_EQ(parallel_result.bytes_streamed, serial_result.bytes_streamed);
      EXPECT_EQ(parallel_result.matches, serial_result.matches);
      EXPECT_EQ(parallel_result.probes.tree_probes,
                serial_result.probes.tree_probes)
          << text;
      EXPECT_EQ(parallel_result.probes.naive_probes,
                serial_result.probes.naive_probes)
          << text;
    }
  }
}

/// Same determinism for the generic plan (full-copy backend): Store::Query
/// output for a range is byte-identical whether the pool fans out or not.
/// Exercised through the public API with many concurrent range queries.
TEST(ParallelRangeTest, GenericRangeQueriesAreDeterministicUnderThreads) {
  auto store = MakeEmptyStore(BackendParam{"full_copy", "full-copy", false});
  for (const std::string& text : ChurningVersions(8)) {
    ASSERT_TRUE(store->Append(text).ok());
  }
  const std::string q = "/db/entry[id=\"3\"] @ versions 1..8";
  StringSink reference;
  ASSERT_TRUE(store->Query(q, reference).ok());
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < 10; ++round) {
        StringSink sink;
        if (!store->Query(q, sink).ok() || sink.data() != reference.data()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace xarch
