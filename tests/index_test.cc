#include <gtest/gtest.h>

#include <cmath>

#include "core/archive.h"
#include "index/archive_index.h"
#include "index/timestamp_tree.h"
#include "xml/value.h"
#include "synth/omim.h"
#include "util/random.h"
#include "xml/parser.h"

namespace xarch::index {
namespace {

// ---------------------------------------------------------- TimestampTree

TEST(TimestampTreeTest, EmptyTree) {
  TimestampTree tree = TimestampTree::Build({});
  size_t probes = 0;
  EXPECT_TRUE(tree.Lookup(1, &probes).empty());
  EXPECT_EQ(probes, 0u);
}

TEST(TimestampTreeTest, PaperFigure15) {
  // The archive of Fig. 15: children l1..l8 with the given timestamps.
  std::vector<VersionSet> stamps = {
      *VersionSet::Parse("1-2"),     *VersionSet::Parse("1-2"),
      *VersionSet::Parse("3-5"),     *VersionSet::Parse("4"),
      *VersionSet::Parse("3-5"),     *VersionSet::Parse("3-5"),
      *VersionSet::Parse("4-6"),     *VersionSet::Parse("3-5,7-9")};
  TimestampTree tree = TimestampTree::Build(stamps);
  size_t probes = 0;
  // Version 2: only l1 and l2 (the highlighted search of Fig. 15).
  auto hits = tree.Lookup(2, &probes);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0], 0u);
  EXPECT_EQ(hits[1], 1u);
  // The right half (3-9) is pruned at its root: far fewer than 2k probes.
  EXPECT_LT(probes, 2 * stamps.size());
  // Version 7: only l8.
  hits = tree.Lookup(7, &probes);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 7u);
  // Version 10: nothing; one root probe suffices.
  hits = tree.Lookup(10, &probes);
  EXPECT_TRUE(hits.empty());
  EXPECT_EQ(probes, 1u);
}

TEST(TimestampTreeTest, LookupMatchesLinearScan) {
  Rng rng(91);
  for (int trial = 0; trial < 50; ++trial) {
    size_t k = rng.Uniform(1, 40);
    std::vector<VersionSet> stamps(k);
    for (auto& s : stamps) {
      size_t n = rng.Uniform(1, 4);
      for (size_t i = 0; i < n; ++i) {
        Version lo = static_cast<Version>(rng.Uniform(1, 20));
        Version hi = lo + static_cast<Version>(rng.Uniform(0, 5));
        s.UnionWith(VersionSet::Interval(lo, hi));
      }
    }
    TimestampTree tree = TimestampTree::Build(stamps);
    for (Version v = 1; v <= 26; ++v) {
      std::vector<size_t> expected;
      for (size_t i = 0; i < k; ++i) {
        if (stamps[i].Contains(v)) expected.push_back(i);
      }
      size_t probes = 0;
      EXPECT_EQ(tree.Lookup(v, &probes), expected);
      EXPECT_LE(probes, 2 * k + k);  // budget + fallback scan at worst
    }
  }
}

TEST(TimestampTreeTest, ProbeBoundForSparseVersions) {
  // k children, only α=1 relevant: probes ≤ 2α-1+2α·log2(k/α) + slack.
  const size_t k = 256;
  std::vector<VersionSet> stamps;
  for (size_t i = 0; i < k; ++i) {
    stamps.push_back(VersionSet::Single(static_cast<Version>(i + 1)));
  }
  TimestampTree tree = TimestampTree::Build(stamps);
  size_t probes = 0;
  auto hits = tree.Lookup(17, &probes);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 16u);
  double bound = 2 * 1 - 1 + 2 * 1 * std::log2(static_cast<double>(k));
  EXPECT_LE(probes, static_cast<size_t>(bound) + 2);
}

TEST(TimestampTreeTest, DenseVersionFallsBackNearLinear) {
  // All children relevant: probing every tree node would cost ~2k; the
  // 2k budget caps it and the answer stays correct.
  const size_t k = 64;
  std::vector<VersionSet> stamps(k, VersionSet::Interval(1, 10));
  TimestampTree tree = TimestampTree::Build(stamps);
  size_t probes = 0;
  auto hits = tree.Lookup(5, &probes);
  EXPECT_EQ(hits.size(), k);
  EXPECT_LE(probes, 3 * k);
}

TEST(TimestampTreeTest, SingleLeafTree) {
  // k=1: the tree is one leaf; a lookup probes exactly it.
  TimestampTree tree = TimestampTree::Build({*VersionSet::Parse("2-4")});
  EXPECT_EQ(tree.leaf_count(), 1u);
  EXPECT_EQ(tree.node_count(), 1u);
  size_t probes = 0;
  auto hits = tree.Lookup(3, &probes);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 0u);
  EXPECT_EQ(probes, 1u);
  hits = tree.Lookup(5, &probes);
  EXPECT_TRUE(hits.empty());
  EXPECT_EQ(probes, 1u);
}

TEST(TimestampTreeTest, AllChildrenRelevantStaysWithinPaperBound) {
  // α = k: every node of the tree contains v, so the search pays the
  // dense side of the paper's bound, min(2α−1+2α·log(k/α), 2k) = 2k−1 —
  // which is also the entire tree, so the 2k budget is never exhausted.
  for (size_t k : {1u, 2u, 7u, 64u}) {
    std::vector<VersionSet> stamps(k, VersionSet::Interval(1, 10));
    TimestampTree tree = TimestampTree::Build(stamps);
    size_t probes = 0;
    auto hits = tree.Lookup(5, &probes);
    EXPECT_EQ(hits.size(), k);
    EXPECT_EQ(probes, 2 * k - 1) << "k=" << k;
    EXPECT_EQ(tree.node_count(), 2 * k - 1) << "k=" << k;
  }
}

TEST(TimestampTreeTest, ProbeBudgetFallbackScansLeavesCorrectly) {
  // The default budget of 2k can never be exhausted (the whole tree has
  // 2k−1 nodes), so the fallback is driven through the explicit-budget
  // overload: a starved search must abandon the descent, scan the k
  // leaves, and return the identical answer.
  const size_t k = 32;
  std::vector<VersionSet> stamps;
  for (size_t i = 0; i < k; ++i) {
    stamps.push_back(VersionSet::Interval(1, 10));
  }
  TimestampTree tree = TimestampTree::Build(stamps);
  size_t probes = 0;
  auto full = tree.Lookup(5, &probes);
  ASSERT_EQ(full.size(), k);
  for (size_t budget : {size_t{1}, size_t{5}, k}) {
    size_t starved_probes = 0;
    auto starved = tree.Lookup(5, &starved_probes, budget);
    EXPECT_EQ(starved, full) << "budget " << budget;
    // Cost: the budgeted descent (exceeded by at most the leaves popped
    // before the next internal node checks the budget) plus the k-leaf
    // scan.
    EXPECT_LE(starved_probes, budget + 2 * k) << "budget " << budget;
    EXPECT_GE(starved_probes, k) << "budget " << budget;
  }
}

TEST(TimestampTreeTest, LookupRespectsPaperProbeBound) {
  // Random trees: every lookup must respect the Sec. 7.1 bound
  // min(2α−1+2α·log2(k/α), 2k) (with ceil(log2) for the unbalanced last
  // level of the paired construction), and the α=0 root short-circuit.
  Rng rng(1347);
  for (int trial = 0; trial < 40; ++trial) {
    size_t k = rng.Uniform(1, 200);
    std::vector<VersionSet> stamps(k);
    for (auto& s : stamps) {
      Version lo = static_cast<Version>(rng.Uniform(1, 30));
      Version hi = lo + static_cast<Version>(rng.Uniform(0, 8));
      s = VersionSet::Interval(lo, hi);
    }
    TimestampTree tree = TimestampTree::Build(stamps);
    for (Version v = 1; v <= 39; ++v) {
      size_t probes = 0;
      auto hits = tree.Lookup(v, &probes);
      const double a = static_cast<double>(hits.size());
      if (a == 0) {
        // Nothing relevant: pruned high up, never worse than the tree.
        EXPECT_LE(probes, 2 * k - 1);
        continue;
      }
      const double sparse_bound =
          2 * a - 1 + 2 * a * std::ceil(std::log2(static_cast<double>(k) / a));
      const double bound = std::min(sparse_bound,
                                    static_cast<double>(2 * k));
      EXPECT_LE(static_cast<double>(probes), bound)
          << "k=" << k << " alpha=" << a << " v=" << v;
    }
  }
}

TEST(TimestampTreeTest, NodeCountLinearInLeaves) {
  std::vector<VersionSet> stamps(100, VersionSet::Single(1));
  TimestampTree tree = TimestampTree::Build(stamps);
  EXPECT_EQ(tree.leaf_count(), 100u);
  EXPECT_LT(tree.node_count(), 200u);
}

// ----------------------------------------------------------- ArchiveIndex

constexpr const char* kCompanyKeys = R"(
(/, (db, {}))
(/db, (dept, {name}))
(/db/dept, (emp, {fn, ln}))
(/db/dept/emp, (sal, {}))
(/db/dept/emp, (tel, {.}))
)";

keys::KeySpecSet MustSpec(const char* text) {
  auto spec = keys::ParseKeySpecSet(text);
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  return std::move(spec).value();
}

core::Archive MakeOmimArchive(int versions) {
  synth::OmimGenerator::Options options;
  options.initial_records = 60;
  options.insert_ratio = 0.05;
  options.delete_ratio = 0.02;
  options.modify_ratio = 0.02;
  synth::OmimGenerator gen(options);
  core::Archive archive(MustSpec(synth::OmimGenerator::KeySpecText()));
  for (int v = 0; v < versions; ++v) {
    Status st = archive.AddVersion(*gen.NextVersion());
    EXPECT_TRUE(st.ok()) << st.ToString();
  }
  return archive;
}

TEST(ArchiveIndexTest, RetrieveMatchesScan) {
  core::Archive archive = MakeOmimArchive(8);
  ArchiveIndex index(archive);
  for (Version v = 1; v <= 8; ++v) {
    ProbeStats stats;
    auto indexed = index.RetrieveVersion(v, &stats);
    auto scanned = archive.RetrieveVersion(v);
    ASSERT_TRUE(indexed.ok()) << indexed.status().ToString();
    ASSERT_TRUE(scanned.ok());
    ASSERT_NE(indexed->get(), nullptr);
    // Identical reconstruction (both walk children in archive order).
    EXPECT_TRUE(xml::ValueEqual(**indexed, **scanned)) << "version " << v;
  }
}

TEST(ArchiveIndexTest, EarlyVersionsProbeFewerThanNaive) {
  // After many accretive versions, version 1 touches a small fraction of
  // the archive: the timestamp trees must prune most children.
  core::Archive archive = MakeOmimArchive(12);
  ArchiveIndex index(archive);
  ProbeStats stats;
  auto got = index.RetrieveVersion(1, &stats);
  ASSERT_TRUE(got.ok());
  // naive probes counts every child of every *visited* node; the real
  // naive scan visits all nodes. Tree probes must not exceed the scan of
  // visited nodes by more than the 2k budget factor.
  EXPECT_GT(stats.naive_probes, 0u);
  EXPECT_LE(stats.tree_probes, 3 * stats.naive_probes);
}

TEST(ArchiveIndexTest, HistoryMatchesArchiveHistory) {
  core::Archive archive = MakeOmimArchive(6);
  ArchiveIndex index(archive);
  // Probe a record that exists from version 1.
  auto v1 = archive.RetrieveVersion(1);
  ASSERT_TRUE(v1.ok());
  const xml::Node* record = (*v1)->FindChild("Record");
  ASSERT_NE(record, nullptr);
  std::string num = record->FindChild("Num")->TextContent();
  std::vector<core::KeyStep> path = {{"ROOT", {}},
                                     {"Record", {{"Num", num}}}};
  ProbeStats stats;
  auto indexed = index.History(path, &stats);
  auto scanned = archive.History(path);
  ASSERT_TRUE(indexed.ok()) << indexed.status().ToString();
  ASSERT_TRUE(scanned.ok());
  EXPECT_EQ(indexed->ToString(), scanned->ToString());
  EXPECT_GT(stats.comparisons, 0u);
  // O(l log d): comparisons far below the total number of records.
  EXPECT_LT(stats.comparisons, 60u);
}

TEST(ArchiveIndexTest, HistoryMissingElement) {
  core::Archive archive = MakeOmimArchive(3);
  ArchiveIndex index(archive);
  ProbeStats stats;
  auto got = index.History({{"ROOT", {}}, {"Record", {{"Num", "nope"}}}},
                           &stats);
  EXPECT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kNotFound);
}

TEST(ArchiveIndexTest, EmptyVersionRetrievesNull) {
  auto spec = MustSpec(kCompanyKeys);
  core::Archive archive(std::move(spec));
  auto doc = xml::Parse("<db><dept><name>x</name></dept></db>");
  ASSERT_TRUE(doc.ok());
  ASSERT_TRUE(archive.AddVersion(**doc).ok());
  archive.AddEmptyVersion();
  ArchiveIndex index(archive);
  ProbeStats stats;
  auto got = index.RetrieveVersion(2, &stats);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->get(), nullptr);
  auto got1 = index.RetrieveVersion(1, &stats);
  ASSERT_TRUE(got1.ok());
  EXPECT_NE(got1->get(), nullptr);
}

TEST(ArchiveIndexTest, TreeNodeCountReported) {
  core::Archive archive = MakeOmimArchive(3);
  ArchiveIndex index(archive);
  EXPECT_GT(index.TreeNodeCount(), 0u);
}

}  // namespace
}  // namespace xarch::index
