#!/usr/bin/env python3
"""CI gate for the METRICS scrape: parse the Prometheus text exposition a
live xarchd returned and assert the instrument families that prove each
seam is wired — query engine, ingest, WAL, VFS, and the server itself.

Usage: check_metrics.py metrics.txt [--shards K]
With --shards K the scrape must come from a sharded daemon
(docs/SHARDING.md): the per-shard families must be present and each must
carry exactly K distinct shard="..." labels, 0..K-1 — a shard missing
from its own counter family means its instruments were never wired.

Exits nonzero (with a reason on stderr) on a parse error or a missing
family; prints a one-line summary on success.

Stdlib only, and deliberately strict about the exposition grammar we
emit: `name{labels} value` or `name value`, with `# HELP`/`# TYPE`
comments. A scrape line that does not fit means the encoder regressed.
"""

import re
import sys

# One representative per instrumented seam. Each must appear as a sample
# (not merely a comment) in the scrape.
REQUIRED = [
    "xarch_queries_total",           # query engine (per plan kind)
    "xarch_query_duration_us",       # query latency histogram
    "xarch_ingest_batches_total",    # ingest path
    "xarch_wal_appends_total",       # WAL appends
    "xarch_wal_fsyncs_total",        # WAL durability
    "xarch_vfs_ops_total",           # VFS wrapper (StatsVfs)
    "xarch_vfs_bytes_total",         # VFS byte accounting
    "xarch_server_sessions_opened_total",  # server sessions
    "xarch_server_frames_total",     # server frame handling
    "xarch_server_query_latency_us", # server-side latency histogram
]

# Families a sharded store registers per shard (labeled shard="i"). Each
# must cover every shard 0..K-1, no more.
SHARD_FAMILIES = [
    "xarch_shard_ingest_documents_total",
    "xarch_shard_scatter_reads_total",
    "xarch_shard_routed_queries_total",
]

SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"      # metric name
    r"(\{[^{}]*\})?"                     # optional {labels}
    r" (-?[0-9]+(?:\.[0-9]+)?|[+-]Inf|NaN)$"  # value
)
LABELS_RE = re.compile(r'^\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"'
                       r'(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\}$')
SHARD_LABEL_RE = re.compile(r'shard="([^"]*)"')


def main() -> int:
    args = sys.argv[1:]
    shards = 0
    if "--shards" in args:
        at = args.index("--shards")
        try:
            shards = int(args[at + 1])
        except (IndexError, ValueError):
            print("check_metrics: --shards needs an integer", file=sys.stderr)
            return 2
        del args[at:at + 2]
        if shards < 1:
            print("check_metrics: --shards must be >= 1", file=sys.stderr)
            return 2
    if len(args) != 1:
        print("usage: check_metrics.py metrics.txt [--shards K]",
              file=sys.stderr)
        return 2
    with open(args[0], encoding="utf-8") as f:
        lines = f.read().splitlines()

    if not lines:
        print("check_metrics: scrape is empty", file=sys.stderr)
        return 1

    seen = set()
    shard_labels = {}  # family name -> set of shard label values
    samples = 0
    for n, line in enumerate(lines, 1):
        if not line:
            continue
        if line.startswith("#"):
            if not (line.startswith("# HELP ") or line.startswith("# TYPE ")):
                print(f"check_metrics: line {n}: unknown comment form: "
                      f"{line!r}", file=sys.stderr)
                return 1
            continue
        m = SAMPLE_RE.match(line)
        if not m:
            print(f"check_metrics: line {n}: not a sample line: {line!r}",
                  file=sys.stderr)
            return 1
        name, labels = m.group(1), m.group(2)
        if labels and not LABELS_RE.match(labels):
            print(f"check_metrics: line {n}: malformed labels: {labels!r}",
                  file=sys.stderr)
            return 1
        samples += 1
        seen.add(name)
        # Histogram series count toward their family name.
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix):
                seen.add(name[: -len(suffix)])
        if labels and name in SHARD_FAMILIES:
            shard = SHARD_LABEL_RE.search(labels)
            if shard:
                shard_labels.setdefault(name, set()).add(shard.group(1))

    missing = [r for r in REQUIRED if r not in seen]
    if missing:
        print(f"check_metrics: missing required metrics: {missing}",
              file=sys.stderr)
        return 1

    if shards:
        expected = {str(i) for i in range(shards)}
        for family in SHARD_FAMILIES:
            got = shard_labels.get(family, set())
            if got != expected:
                print(f"check_metrics: {family}: shard label cardinality "
                      f"mismatch — expected shard= values "
                      f"{sorted(expected, key=int)}, got "
                      f"{sorted(got, key=int) if got else []}",
                      file=sys.stderr)
                return 1

    shard_note = (f", {len(SHARD_FAMILIES)} per-shard families × {shards} "
                  f"shards" if shards else "")
    print(f"check_metrics: OK — {samples} samples, {len(seen)} series names, "
          f"all {len(REQUIRED)} required families present{shard_note}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
