#!/usr/bin/env python3
"""CI gate for the METRICS scrape: parse the Prometheus text exposition a
live xarchd returned and assert the instrument families that prove each
seam is wired — query engine, ingest, WAL, VFS, and the server itself.

Usage: check_metrics.py metrics.txt
Exits nonzero (with a reason on stderr) on a parse error or a missing
family; prints a one-line summary on success.

Stdlib only, and deliberately strict about the exposition grammar we
emit: `name{labels} value` or `name value`, with `# HELP`/`# TYPE`
comments. A scrape line that does not fit means the encoder regressed.
"""

import re
import sys

# One representative per instrumented seam. Each must appear as a sample
# (not merely a comment) in the scrape.
REQUIRED = [
    "xarch_queries_total",           # query engine (per plan kind)
    "xarch_query_duration_us",       # query latency histogram
    "xarch_ingest_batches_total",    # ingest path
    "xarch_wal_appends_total",       # WAL appends
    "xarch_wal_fsyncs_total",        # WAL durability
    "xarch_vfs_ops_total",           # VFS wrapper (StatsVfs)
    "xarch_vfs_bytes_total",         # VFS byte accounting
    "xarch_server_sessions_opened_total",  # server sessions
    "xarch_server_frames_total",     # server frame handling
    "xarch_server_query_latency_us", # server-side latency histogram
]

SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"      # metric name
    r"(\{[^{}]*\})?"                     # optional {labels}
    r" (-?[0-9]+(?:\.[0-9]+)?|[+-]Inf|NaN)$"  # value
)
LABELS_RE = re.compile(r'^\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"'
                       r'(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\}$')


def main() -> int:
    if len(sys.argv) != 2:
        print("usage: check_metrics.py metrics.txt", file=sys.stderr)
        return 2
    with open(sys.argv[1], encoding="utf-8") as f:
        lines = f.read().splitlines()

    if not lines:
        print("check_metrics: scrape is empty", file=sys.stderr)
        return 1

    seen = set()
    samples = 0
    for n, line in enumerate(lines, 1):
        if not line:
            continue
        if line.startswith("#"):
            if not (line.startswith("# HELP ") or line.startswith("# TYPE ")):
                print(f"check_metrics: line {n}: unknown comment form: "
                      f"{line!r}", file=sys.stderr)
                return 1
            continue
        m = SAMPLE_RE.match(line)
        if not m:
            print(f"check_metrics: line {n}: not a sample line: {line!r}",
                  file=sys.stderr)
            return 1
        name, labels = m.group(1), m.group(2)
        if labels and not LABELS_RE.match(labels):
            print(f"check_metrics: line {n}: malformed labels: {labels!r}",
                  file=sys.stderr)
            return 1
        samples += 1
        seen.add(name)
        # Histogram series count toward their family name.
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix):
                seen.add(name[: -len(suffix)])

    missing = [r for r in REQUIRED if r not in seen]
    if missing:
        print(f"check_metrics: missing required metrics: {missing}",
              file=sys.stderr)
        return 1

    print(f"check_metrics: OK — {samples} samples, {len(seen)} series names, "
          f"all {len(REQUIRED)} required families present")
    return 0


if __name__ == "__main__":
    sys.exit(main())
