// A curated scientific database, archived daily.
//
// Models the OMIM scenario from the paper's introduction: a database that
// publishes almost every day, accretes records, and needs (a) any past
// version back, (b) the history of any record, (c) bounded storage. Runs
// the archive and the diff-repository alternative behind Store v2 and
// shows the effect of compression, streaming retrieval, and the archive's
// XML persistence.

#include <cstdio>

#include "synth/omim.h"
#include "xarch/xarch.h"

namespace {

void Fail(const xarch::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  std::exit(1);
}

std::unique_ptr<xarch::Store> MakeStore(const char* backend) {
  xarch::StoreOptions options;
  auto spec = xarch::keys::ParseKeySpecSet(
      xarch::synth::OmimGenerator::KeySpecText());
  if (!spec.ok()) Fail(spec.status());
  options.spec = std::move(*spec);
  auto store = xarch::StoreRegistry::Create(backend, std::move(options));
  if (!store.ok()) Fail(store.status());
  return std::move(store).value();
}

}  // namespace

int main() {
  constexpr int kDays = 30;

  xarch::synth::OmimGenerator::Options gen_options;
  gen_options.initial_records = 120;
  xarch::synth::OmimGenerator gen(gen_options);

  auto archive = MakeStore("archive");
  auto inc = MakeStore("incr-diff");

  // Indentation-free serialization on both sides for fair byte counts.
  xarch::xml::SerializeOptions ver_ser;
  ver_ser.indent_width = 0;

  std::string first_num;  // a record present since day 1
  size_t last_version_bytes = 0;
  for (int day = 0; day < kDays; ++day) {
    auto doc = gen.NextVersion();
    if (first_num.empty()) {
      first_num = doc->FindChild("Record")->FindChild("Num")->TextContent();
    }
    std::string text = xarch::xml::Serialize(*doc, ver_ser);
    last_version_bytes = text.size();
    if (xarch::Status st = archive->Append(text); !st.ok()) Fail(st);
    if (xarch::Status st = inc->Append(text); !st.ok()) Fail(st);
  }

  std::printf("archived %d daily versions of a curated database\n\n", kDays);

  // Storage accounting (Sec. 5): the archive vs the diff repository, raw
  // and compressed (XMill-substitute for the archive, LZSS ~ gzip for the
  // diff repository).
  std::string archive_xml = archive->StoredBytes();
  auto compressed_archive =
      xarch::compress::XmlContainerCompressor::CompressText(archive_xml);
  if (!compressed_archive.ok()) Fail(compressed_archive.status());
  size_t gzip_diffs =
      xarch::compress::LzssCompress(inc->StoredBytes()).size();

  std::printf("%-28s %12zu bytes\n", "last version", last_version_bytes);
  std::printf("%-28s %12zu bytes (%.2fx last version)\n", "archive",
              archive_xml.size(),
              static_cast<double>(archive_xml.size()) / last_version_bytes);
  std::printf("%-28s %12zu bytes\n", "V1 + incremental diffs",
              inc->ByteSize());
  std::printf("%-28s %12zu bytes (%.0f%% of last version)\n",
              "xmill(archive)", compressed_archive->size(),
              100.0 * compressed_archive->size() / last_version_bytes);
  std::printf("%-28s %12zu bytes\n\n", "gzip(V1 + inc diffs)", gzip_diffs);

  // Temporal queries (Sec. 7) through the Store interface.
  auto history = archive->History(
      {{"ROOT", {}}, {"Record", {{"Num", first_num}}}});
  if (!history.ok()) Fail(history.status());
  std::printf("record %s exists at versions: %s\n", first_num.c_str(),
              history->ToString().c_str());

  // Streaming retrieval of an old version: serialized straight off the
  // archive scan, no intermediate tree; the diff repository needs no delta
  // applications for version 1.
  xarch::CountingSink counter;
  if (xarch::Status st = archive->RetrieveTo(1, counter); !st.ok()) Fail(st);
  auto from_diffs = inc->Retrieve(1);
  if (!from_diffs.ok()) Fail(from_diffs.status());
  std::printf("version 1: archive streamed %zu bytes in one scan; diff repo "
              "stored %zu bytes verbatim\n",
              counter.bytes(), from_diffs->size());

  // Changes between two days, grouped by record rather than by line.
  auto changes = archive->DiffVersions(1, 2);
  if (!changes.ok()) Fail(changes.status());
  std::printf("day 1 -> day 2: %zu record-level changes\n\n",
              changes->size());

  // The archive is an XML document: it can be written out, reloaded, and
  // merging continues where it left off.
  auto spec2 = xarch::keys::ParseKeySpecSet(
      xarch::synth::OmimGenerator::KeySpecText());
  if (!spec2.ok()) Fail(spec2.status());
  auto reloaded = xarch::core::Archive::FromXml(archive_xml,
                                                std::move(*spec2));
  if (!reloaded.ok()) Fail(reloaded.status());
  auto next = gen.NextVersion();
  if (xarch::Status st = reloaded->AddVersion(*next); !st.ok()) Fail(st);
  std::printf("reloaded archive from XML and merged day %d: now %u versions\n",
              kDays + 1, reloaded->version_count());
  return 0;
}
