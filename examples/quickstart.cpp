// Quickstart: archive the paper's running example (Fig. 2) and query it.
//
// Builds the four versions of the company database, merges them into one
// compacted archive with Nested Merge, retrieves past versions, asks for
// element histories, and prints the archive's XML form (Fig. 5).

#include <cstdio>

#include "xarch/xarch.h"

namespace {

constexpr const char* kKeys = R"(
(/, (db, {}))
(/db, (dept, {name}))
(/db/dept, (emp, {fn, ln}))
(/db/dept/emp, (sal, {}))
(/db/dept/emp, (tel, {.}))
)";

constexpr const char* kVersions[] = {
    // Version 1: John Doe in finance.
    R"(<db><dept><name>finance</name>
         <emp><fn>John</fn><ln>Doe</ln><sal>95K</sal><tel>123-4567</tel></emp>
       </dept></db>)",
    // Version 2: John is gone; Jane Smith arrives.
    R"(<db><dept><name>finance</name>
         <emp><fn>Jane</fn><ln>Smith</ln></emp>
       </dept></db>)",
    // Version 3: John is back at 90K; a marketing John Doe appears too.
    R"(<db>
        <dept><name>finance</name>
          <emp><fn>John</fn><ln>Doe</ln><sal>90K</sal><tel>123-4567</tel></emp>
        </dept>
        <dept><name>marketing</name>
          <emp><fn>John</fn><ln>Doe</ln></emp>
        </dept>
       </db>)",
    // Version 4: both employees in finance; Jane has two phones.
    R"(<db><dept><name>finance</name>
         <emp><fn>John</fn><ln>Doe</ln><sal>95K</sal><tel>123-4567</tel></emp>
         <emp><fn>Jane</fn><ln>Smith</ln><sal>95K</sal><tel>123-6789</tel>
              <tel>112-3456</tel></emp>
       </dept></db>)",
};

void Fail(const xarch::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  std::exit(1);
}

}  // namespace

int main() {
  // 1. Parse the key specification (Sec. 3 / Appendix B format).
  auto spec = xarch::keys::ParseKeySpecSet(kKeys);
  if (!spec.ok()) Fail(spec.status());

  // 2. Merge all four versions into one archive.
  xarch::core::Archive archive(std::move(*spec));
  for (const char* text : kVersions) {
    auto doc = xarch::xml::Parse(text);
    if (!doc.ok()) Fail(doc.status());
    xarch::Status st = archive.AddVersion(**doc);
    if (!st.ok()) Fail(st);
  }
  std::printf("archived %u versions; archive invariants: %s\n\n",
              archive.version_count(), archive.Check().ToString().c_str());

  // 3. Retrieve version 2 again.
  auto v2 = archive.RetrieveVersion(2);
  if (!v2.ok()) Fail(v2.status());
  std::printf("--- version 2, reconstructed by one scan ---\n%s\n",
              xarch::xml::Serialize(**v2).c_str());

  // 4. Temporal histories (Sec. 7.2). The key-based archive knows that
  //    Jane Smith at versions 2 and 4 is the same person.
  struct Query {
    const char* what;
    std::vector<xarch::core::KeyStep> path;
  };
  std::vector<Query> queries = {
      {"db", {{"db", {}}}},
      {"dept 'finance'", {{"db", {}}, {"dept", {{"name", "finance"}}}}},
      {"dept 'marketing'", {{"db", {}}, {"dept", {{"name", "marketing"}}}}},
      {"Jane Smith (finance)",
       {{"db", {}},
        {"dept", {{"name", "finance"}}},
        {"emp", {{"fn", "Jane"}, {"ln", "Smith"}}}}},
      {"John Doe (finance)",
       {{"db", {}},
        {"dept", {{"name", "finance"}}},
        {"emp", {{"fn", "John"}, {"ln", "Doe"}}}}},
  };
  std::printf("--- element histories ---\n");
  for (const auto& q : queries) {
    auto history = archive.History(q.path);
    std::printf("%-24s -> versions %s\n", q.what,
                history.ok() ? history->ToString().c_str()
                             : history.status().ToString().c_str());
  }

  // 5. Meaningful change descriptions (Sec. 1): grouped by element, not by
  //    line, so identities are never confused (contrast the paper's Fig. 1
  //    diff output).
  auto changes = xarch::core::DescribeChanges(archive, 1, 2);
  if (!changes.ok()) Fail(changes.status());
  std::printf("\n--- changes from version 1 to version 2 ---\n%s",
              xarch::core::FormatChanges(*changes).c_str());

  // 6. The archive itself is an XML document (Fig. 5).
  std::printf("\n--- archive XML ---\n%s", archive.ToXml().c_str());

  // 7. The same workflow through Store v2: backends resolve by name from
  //    the registry, versions batch-ingest in one merge pass, and
  //    retrieval streams without materializing a tree.
  std::printf("\n--- Store v2 registry ---\n");
  for (const auto* entry : xarch::StoreRegistry::Global().List()) {
    std::printf("%-20s [%s]\n", entry->name.c_str(),
                xarch::CapabilitiesToString(entry->capabilities).c_str());
  }

  auto spec2 = xarch::keys::ParseKeySpecSet(kKeys);
  if (!spec2.ok()) Fail(spec2.status());
  xarch::StoreOptions store_options;
  store_options.spec = std::move(*spec2);
  auto store = xarch::StoreRegistry::Create("archive",
                                            std::move(store_options));
  if (!store.ok()) Fail(store.status());

  std::vector<std::string_view> batch(std::begin(kVersions),
                                      std::end(kVersions));
  if (xarch::Status st = (*store)->AppendBatch(batch); !st.ok()) Fail(st);
  xarch::StoreStats stats = (*store)->Stats();
  std::printf("\nbatch-ingested %u versions in %llu merge pass(es); "
              "%zu archive nodes, %zu stored bytes\n",
              stats.versions,
              static_cast<unsigned long long>(stats.merge_passes),
              stats.node_count, stats.stored_bytes);

  xarch::StringSink sink;
  if (xarch::Status st = (*store)->RetrieveTo(2, sink); !st.ok()) Fail(st);
  std::printf("\n--- version 2, streamed straight off the archive scan "
              "---\n%s",
              sink.data().c_str());

  auto jane = (*store)->History({{"db", {}},
                                 {"dept", {{"name", "finance"}}},
                                 {"emp", {{"fn", "Jane"}, {"ln", "Smith"}}}});
  if (!jane.ok()) Fail(jane.status());
  std::printf("\nJane Smith (via Store::History) -> versions %s\n",
              jane->ToString().c_str());
  return 0;
}
