// Versioning a fast-changing auction site (XMark data).
//
// Exercises the change simulators of Sec. 5.3 and compares every storage
// strategy the paper evaluates — the key-based archive, incremental diffs,
// cumulative diffs, full copies — raw and compressed, for both a random
// workload and the worst-case key-mutation workload. All strategies run
// behind Store v2, resolved by name from the registry, and each workload
// is ingested as ONE AppendBatch call (a single nested-merge pass for the
// archive).

#include <cstdio>
#include <vector>

#include "synth/xmark.h"
#include "xarch/xarch.h"

namespace {

void Fail(const xarch::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  std::exit(1);
}

std::unique_ptr<xarch::Store> MakeStore(const char* backend) {
  xarch::StoreOptions options;
  auto spec = xarch::keys::ParseKeySpecSet(
      xarch::synth::XMarkGenerator::KeySpecText());
  if (!spec.ok()) Fail(spec.status());
  options.spec = std::move(*spec);
  auto store = xarch::StoreRegistry::Create(backend, std::move(options));
  if (!store.ok()) Fail(store.status());
  return std::move(store).value();
}

void RunWorkload(const char* title, bool worst_case, double pct,
                 int versions) {
  xarch::synth::XMarkGenerator::Options gen_options;
  gen_options.items = 25;
  gen_options.people = 40;
  gen_options.open_auctions = 25;
  xarch::synth::XMarkGenerator gen(gen_options);

  std::vector<std::unique_ptr<xarch::Store>> stores;
  for (const char* backend :
       {"archive", "incr-diff", "cum-diff", "full-copy"}) {
    stores.push_back(MakeStore(backend));
  }

  // Indentation-free serialization keeps byte comparisons fair (the
  // archive nests deeper than a version).
  xarch::xml::SerializeOptions flat;
  flat.indent_width = 0;
  std::vector<std::string> texts;
  for (int v = 0; v < versions; ++v) {
    if (v > 0) {
      if (worst_case) {
        gen.MutateKeys(pct);
      } else {
        gen.MutateRandom(pct);
      }
    }
    texts.push_back(xarch::xml::Serialize(*gen.Current(), flat));
  }
  std::vector<std::string_view> batch(texts.begin(), texts.end());
  for (auto& store : stores) {
    // Every backend advertises kBatchIngest; the archive merges the whole
    // workload in one pass.
    if (xarch::Status st = store->AppendBatch(batch); !st.ok()) Fail(st);
  }

  std::printf("--- %s: %d versions at %.2f%%/step (one version: %zu bytes) "
              "---\n",
              title, versions, pct, texts.back().size());
  for (auto& store : stores) {
    size_t raw = store->ByteSize();
    std::string stored = store->StoredBytes();
    size_t compressed =
        store->name() == "archive"
            ? xarch::compress::XmlContainerCompressor::CompressText(stored)
                  ->size()
            : xarch::compress::LzssCompress(stored).size();
    std::printf("%-16s raw %9zu bytes   compressed %9zu bytes\n",
                store->name().c_str(), raw, compressed);
  }

  // Verify every store reproduces the latest version.
  for (auto& store : stores) {
    auto got = store->Retrieve(versions);
    if (!got.ok()) Fail(got.status());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  RunWorkload("random changes, low ratio", /*worst_case=*/false, 1.66, 8);
  RunWorkload("random changes, high ratio", /*worst_case=*/false, 10.0, 8);
  RunWorkload("worst case: key mutations", /*worst_case=*/true, 10.0, 8);
  std::printf(
      "Note the Fig. 13/14 shapes: at high random change ratios the archive "
      "beats\nincremental diffs (old values are revived, not re-stored); "
      "under key\nmutations the diff repository wins on raw bytes while the "
      "compressed archive\nremains competitive.\n");
  return 0;
}
