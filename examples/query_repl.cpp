// query_repl — an interactive XAQL shell over a small curated database.
//
// Seeds an indexed archive store with a handful of versions of the
// paper's company database (departments and employees), then reads XAQL
// queries from stdin and streams the answers. Run it and try:
//
//   /db @ version 1
//   /db/dept[name="finance"]/emp[*] @ version 4
//   /db/dept[name="finance"]/emp[fn="John", ln="Doe"] history
//   /db diff 1 4
//   explain /db @ version 2
//
// Non-interactive use: pass queries as arguments
// (`query_repl '/db diff 1 4'`) — handy for scripts and CI smoke runs.

#include <cstdio>
#include <string>
#include <vector>

#include "xarch/xarch.h"

namespace {

constexpr const char* kKeys = R"(
(/, (db, {}))
(/db, (dept, {name}))
(/db/dept, (emp, {fn, ln}))
(/db/dept/emp, (sal, {}))
(/db/dept/emp, (tel, {.}))
)";

void Fail(const xarch::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  std::exit(1);
}

std::string Emp(const std::string& fn, const std::string& ln,
                const std::string& sal) {
  return "<emp><fn>" + fn + "</fn><ln>" + ln + "</ln><sal>" + sal +
         "</sal></emp>";
}

std::string Dept(const std::string& name, const std::string& emps) {
  return "<dept><name>" + name + "</name>" + emps + "</dept>";
}

std::vector<std::string> CompanyVersions() {
  // v1: two departments; v2: John Doe gets a raise; v3: Anna moves — the
  // Fig. 1 motivation: key-based diff reports the move, not a mutation;
  // v4: a new hire.
  return {
      "<db>" +
          Dept("finance", Emp("John", "Doe", "50000") +
                              Emp("Anna", "Smith", "61000")) +
          Dept("research", Emp("Mary", "Major", "70000")) + "</db>",
      "<db>" +
          Dept("finance", Emp("John", "Doe", "55000") +
                              Emp("Anna", "Smith", "61000")) +
          Dept("research", Emp("Mary", "Major", "70000")) + "</db>",
      "<db>" + Dept("finance", Emp("John", "Doe", "55000")) +
          Dept("research", Emp("Anna", "Smith", "61000") +
                               Emp("Mary", "Major", "70000")) +
          "</db>",
      "<db>" + Dept("finance", Emp("John", "Doe", "55000") +
                                   Emp("Ken", "Thompson", "90000")) +
          Dept("research", Emp("Anna", "Smith", "62000") +
                               Emp("Mary", "Major", "70000")) +
          "</db>",
  };
}

bool RunOne(xarch::Store& store, const std::string& query) {
  xarch::StringSink sink;
  xarch::Status st = store.Query(query, sink);
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return false;
  }
  std::fputs(sink.data().c_str(), stdout);
  if (sink.data().empty() || sink.data().back() != '\n') std::printf("\n");
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  auto spec = xarch::keys::ParseKeySpecSet(kKeys);
  if (!spec.ok()) Fail(spec.status());
  xarch::StoreOptions options;
  options.spec = std::move(*spec);
  options.use_index = true;
  auto store = xarch::StoreRegistry::Create("archive", std::move(options));
  if (!store.ok()) Fail(store.status());
  for (const std::string& text : CompanyVersions()) {
    if (xarch::Status st = (*store)->Append(text); !st.ok()) Fail(st);
  }

  if (argc > 1) {
    // Script mode: any failed query fails the run (CI smoke relies on it).
    bool ok = true;
    for (int i = 1; i < argc; ++i) {
      std::printf("xaql> %s\n", argv[i]);
      ok = RunOne(**store, argv[i]) && ok;
    }
    return ok ? 0 : 1;
  }

  std::printf("XAQL shell — %u versions of the company database archived "
              "(%zu archive nodes).\n",
              (*store)->version_count(), (*store)->Stats().node_count);
  std::printf("Try: /db/dept[name=\"finance\"]/emp[*] @ version 4\n");
  std::printf("     /db/dept[name=\"research\"]/emp[fn=\"Anna\", "
              "ln=\"Smith\"] history\n");
  std::printf("     /db diff 1 4    |    explain /db @ version 2\n");
  std::printf("Ctrl-D quits.\n");
  char line[4096];
  for (;;) {
    std::printf("xaql> ");
    std::fflush(stdout);
    if (std::fgets(line, sizeof line, stdin) == nullptr) break;
    std::string query(line);
    while (!query.empty() &&
           (query.back() == '\n' || query.back() == '\r')) {
      query.pop_back();
    }
    if (query.empty()) continue;
    if (query == "quit" || query == "exit") break;
    RunOne(**store, query);
  }
  std::printf("\n");
  return 0;
}
