// query_repl — an interactive XAQL shell over a small curated database.
//
// Seeds an indexed archive store with a handful of versions of the
// paper's company database (departments and employees), then reads XAQL
// queries from stdin and streams the answers. Run it and try:
//
//   /db @ version 1
//   /db/dept[name="finance"]/emp[*] @ version 4
//   /db/dept[name="finance"]/emp[fn="John", ln="Doe"] history
//   /db diff 1 4
//   explain /db @ version 2
//
// Non-interactive use: pass queries as arguments
// (`query_repl '/db diff 1 4'`) — handy for scripts and CI smoke runs.
//
// Network mode: `query_repl --connect host:port [queries...]` sends every
// query to a running xarchd instead of the built-in company database; the
// shell is otherwise identical, so anything that works locally works over
// the wire.

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "xarch/xarch.h"

namespace {

constexpr const char* kKeys = R"(
(/, (db, {}))
(/db, (dept, {name}))
(/db/dept, (emp, {fn, ln}))
(/db/dept/emp, (sal, {}))
(/db/dept/emp, (tel, {.}))
)";

void Fail(const xarch::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  std::exit(1);
}

std::string Emp(const std::string& fn, const std::string& ln,
                const std::string& sal) {
  return "<emp><fn>" + fn + "</fn><ln>" + ln + "</ln><sal>" + sal +
         "</sal></emp>";
}

std::string Dept(const std::string& name, const std::string& emps) {
  return "<dept><name>" + name + "</name>" + emps + "</dept>";
}

std::vector<std::string> CompanyVersions() {
  // v1: two departments; v2: John Doe gets a raise; v3: Anna moves — the
  // Fig. 1 motivation: key-based diff reports the move, not a mutation;
  // v4: a new hire.
  return {
      "<db>" +
          Dept("finance", Emp("John", "Doe", "50000") +
                              Emp("Anna", "Smith", "61000")) +
          Dept("research", Emp("Mary", "Major", "70000")) + "</db>",
      "<db>" +
          Dept("finance", Emp("John", "Doe", "55000") +
                              Emp("Anna", "Smith", "61000")) +
          Dept("research", Emp("Mary", "Major", "70000")) + "</db>",
      "<db>" + Dept("finance", Emp("John", "Doe", "55000")) +
          Dept("research", Emp("Anna", "Smith", "61000") +
                               Emp("Mary", "Major", "70000")) +
          "</db>",
      "<db>" + Dept("finance", Emp("John", "Doe", "55000") +
                                   Emp("Ken", "Thompson", "90000")) +
          Dept("research", Emp("Anna", "Smith", "62000") +
                               Emp("Mary", "Major", "70000")) +
          "</db>",
  };
}

/// One query against whichever side is live; prints the result or error.
using QueryRunner = std::function<bool(const std::string&)>;

bool PrintResult(const xarch::Status& st, const std::string& data) {
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return false;
  }
  std::fputs(data.c_str(), stdout);
  if (data.empty() || data.back() != '\n') std::printf("\n");
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);

  // --connect host:port switches every query to a remote xarchd.
  std::unique_ptr<xarch::Client> remote;
  for (size_t i = 0; i + 1 < args.size(); ++i) {
    if (args[i] != "--connect") continue;
    const std::string target = args[i + 1];
    args.erase(args.begin() + i, args.begin() + i + 2);
    const size_t colon = target.rfind(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "--connect wants host:port, got %s\n",
                   target.c_str());
      return 2;
    }
    auto client = xarch::Client::Connect(
        target.substr(0, colon),
        static_cast<uint16_t>(std::atoi(target.c_str() + colon + 1)));
    if (!client.ok()) Fail(client.status());
    remote = std::move(*client);
    break;
  }

  std::unique_ptr<xarch::Store> local;
  if (remote == nullptr) {
    auto spec = xarch::keys::ParseKeySpecSet(kKeys);
    if (!spec.ok()) Fail(spec.status());
    xarch::StoreOptions options;
    options.spec = std::move(*spec);
    options.use_index = true;
    auto store = xarch::StoreRegistry::Create("archive", std::move(options));
    if (!store.ok()) Fail(store.status());
    for (const std::string& text : CompanyVersions()) {
      if (xarch::Status st = (*store)->Append(text); !st.ok()) Fail(st);
    }
    local = std::move(*store);
  }

  QueryRunner run = [&](const std::string& query) {
    xarch::StringSink sink;
    xarch::Status st = remote != nullptr ? remote->Query(query, sink)
                                         : local->Query(query, sink);
    return PrintResult(st, sink.data());
  };

  if (!args.empty()) {
    // Script mode: any failed query fails the run (CI smoke relies on it).
    bool ok = true;
    for (const std::string& query : args) {
      std::printf("xaql> %s\n", query.c_str());
      ok = run(query) && ok;
    }
    return ok ? 0 : 1;
  }

  if (remote != nullptr) {
    std::printf("XAQL shell — connected to %s (%s, protocol v%u).\n",
                remote->server_name().c_str(), remote->backend().c_str(),
                remote->protocol_version());
    std::printf("Ctrl-D quits.\n");
    char line[4096];
    for (;;) {
      std::printf("xaql> ");
      std::fflush(stdout);
      if (std::fgets(line, sizeof line, stdin) == nullptr) break;
      std::string query(line);
      while (!query.empty() &&
             (query.back() == '\n' || query.back() == '\r')) {
        query.pop_back();
      }
      if (query.empty()) continue;
      if (query == "quit" || query == "exit") break;
      run(query);
    }
    std::printf("\n");
    return 0;
  }

  std::printf("XAQL shell — %u versions of the company database archived "
              "(%zu archive nodes).\n",
              local->version_count(), local->Stats().node_count);
  std::printf("Try: /db/dept[name=\"finance\"]/emp[*] @ version 4\n");
  std::printf("     /db/dept[name=\"research\"]/emp[fn=\"Anna\", "
              "ln=\"Smith\"] history\n");
  std::printf("     /db diff 1 4    |    explain /db @ version 2\n");
  std::printf("Ctrl-D quits.\n");
  char line[4096];
  for (;;) {
    std::printf("xaql> ");
    std::fflush(stdout);
    if (std::fgets(line, sizeof line, stdin) == nullptr) break;
    std::string query(line);
    while (!query.empty() &&
           (query.back() == '\n' || query.back() == '\r')) {
      query.pop_back();
    }
    if (query.empty()) continue;
    if (query == "quit" || query == "exit") break;
    run(query);
  }
  std::printf("\n");
  return 0;
}
