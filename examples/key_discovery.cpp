// Key discovery: archiving a dataset whose key specification is unknown.
//
// The archiver needs keys, and the paper assumes "the keys for the data
// are provided by experts of the database", asking in its conclusion
// whether they "can be automatically derived, through data analysis or
// mining methodologies on various versions" (Sec. 9). This example runs
// that pipeline: infer keys from a few example versions, inspect them,
// then archive with the inferred specification.

#include <cstdio>

#include "synth/swissprot.h"
#include "xarch/xarch.h"

namespace {

void Fail(const xarch::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  std::exit(1);
}

}  // namespace

int main() {
  // Pretend we received these versions without any schema documentation.
  xarch::synth::SwissProtGenerator::Options gen_options;
  gen_options.initial_records = 30;
  xarch::synth::SwissProtGenerator gen(gen_options);
  std::vector<xarch::xml::NodePtr> versions;
  std::vector<const xarch::xml::Node*> version_ptrs;
  for (int v = 0; v < 5; ++v) {
    versions.push_back(gen.NextVersion());
    version_ptrs.push_back(versions.back().get());
  }

  // 1. Mine a key specification from the data.
  auto keys = xarch::keys::InferKeys(version_ptrs);
  if (!keys.ok()) Fail(keys.status());
  std::printf("inferred %zu keys from %zu versions, e.g.:\n", keys->size(),
              versions.size());
  int shown = 0;
  for (const auto& key : *keys) {
    if (!key.key_paths.empty() && shown < 8) {
      std::printf("  %s\n", key.ToString().c_str());
      ++shown;
    }
  }

  // Remember the key inferred for /ROOT/Record so we can query with it.
  xarch::keys::Key record_key;
  for (const auto& key : *keys) {
    if (key.FullPath().ToString() == "/ROOT/Record") record_key = key;
  }

  // 2. Build the lookup structures and archive the very versions the keys
  //    came from — through Store v2, batching all of them into one
  //    nested-merge pass.
  auto spec = xarch::keys::KeySpecSet::Build(std::move(*keys));
  if (!spec.ok()) Fail(spec.status());
  xarch::StoreOptions store_options;
  store_options.spec = std::move(*spec);
  auto store_or = xarch::StoreRegistry::Create("archive",
                                               std::move(store_options));
  if (!store_or.ok()) Fail(store_or.status());
  xarch::Store& archive = **store_or;
  std::vector<std::string> texts;
  for (const auto& doc : versions) {
    texts.push_back(xarch::xml::Serialize(*doc));
  }
  std::vector<std::string_view> batch(texts.begin(), texts.end());
  if (xarch::Status st = archive.AppendBatch(batch); !st.ok()) Fail(st);
  xarch::StoreStats stats = archive.Stats();
  std::printf("\narchived %u versions with the inferred keys in %llu merge "
              "pass(es)\n",
              stats.versions,
              static_cast<unsigned long long>(stats.merge_passes));

  // 3. The inferred keys support the same temporal queries: query the
  //    first record of version 1 by whatever key inference picked.
  const xarch::xml::Node* record = versions[0]->FindChild("Record");
  xarch::core::KeyStep step{"Record", {}};
  for (const auto& key_path : record_key.key_paths) {
    std::string path_text = key_path.empty() ? "." : key_path.ToString();
    auto targets = xarch::xml::EvalPath(*record, key_path);
    if (targets.size() != 1) Fail(xarch::Status::NotFound("key path value"));
    std::string value = targets[0].is_attr()
                            ? *targets[0].attr_owner->FindAttr(
                                  targets[0].attr_name)
                            : targets[0].node->TextContent();
    if (targets[0].is_attr()) path_text = "@" + targets[0].attr_name;
    step.key.push_back({path_text, value});
  }
  auto history = archive.History({{"ROOT", {}}, step});
  if (!history.ok()) Fail(history.status());
  std::printf("history of the first record (by inferred key %s): versions "
              "%s\n",
              record_key.ToString().c_str(), history->ToString().c_str());

  // 4. And every version is retrievable (streamed, here just counted).
  for (xarch::Version v = 1; v <= archive.version_count(); ++v) {
    xarch::CountingSink sink;
    if (xarch::Status st = archive.RetrieveTo(v, sink); !st.ok()) Fail(st);
  }
  std::printf("all %u versions retrievable from the inferred-key archive\n",
              archive.version_count());
  return 0;
}
