// Temporal queries at scale: timestamp trees and the key index (Sec. 7),
// plus the external-memory archiver (Sec. 6).
//
// Builds a Swiss-Prot-like archive over several releases, then:
//  - retrieves an early version with and without timestamp trees,
//    reporting probe counts;
//  - looks up an element's history with and without the key index;
//  - repeats the archiving with the external-memory archiver under a tiny
//    memory budget and reports its I/O.

#include <cstdio>

#include "synth/swissprot.h"
#include "xarch/xarch.h"

namespace {

void Fail(const xarch::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  std::exit(1);
}

xarch::keys::KeySpecSet Spec() {
  auto spec = xarch::keys::ParseKeySpecSet(
      xarch::synth::SwissProtGenerator::KeySpecText());
  if (!spec.ok()) Fail(spec.status());
  return std::move(*spec);
}

}  // namespace

int main() {
  constexpr int kReleases = 8;
  xarch::synth::SwissProtGenerator::Options gen_options;
  gen_options.initial_records = 60;
  xarch::synth::SwissProtGenerator gen(gen_options);

  xarch::core::Archive archive(Spec());
  std::vector<std::string> version_texts;
  std::string probe_pac;
  for (int r = 0; r < kReleases; ++r) {
    auto doc = gen.NextVersion();
    if (r == 0) {
      probe_pac = doc->FindChild("Record")->FindChild("pac")->TextContent();
    }
    version_texts.push_back(xarch::xml::Serialize(*doc));
    if (xarch::Status st = archive.AddVersion(*doc); !st.ok()) Fail(st);
  }
  std::printf("in-memory archive: %u releases, %zu archive nodes\n\n",
              archive.version_count(), archive.CountNodes());

  // --- Sec. 7.1: version retrieval with timestamp trees.
  xarch::index::ArchiveIndex index(archive);
  xarch::index::ProbeStats stats;
  auto v1 = index.RetrieveVersion(1, &stats);
  if (!v1.ok()) Fail(v1.status());
  std::printf("retrieve release 1 of %d:\n", kReleases);
  std::printf("  timestamp-tree probes: %zu\n", stats.tree_probes);
  std::printf("  children a naive scan would inspect: %zu\n",
              stats.naive_probes);
  std::printf("  index size: %zu tree nodes\n\n", index.TreeNodeCount());

  // --- Sec. 7.2: history of a record via the key index.
  std::vector<xarch::core::KeyStep> path = {
      {"ROOT", {}}, {"Record", {{"pac", probe_pac}}}};
  stats = {};
  auto history = index.History(path, &stats);
  if (!history.ok()) Fail(history.status());
  std::printf("history of Record pac=%s: versions %s\n", probe_pac.c_str(),
              history->ToString().c_str());
  std::printf("  key comparisons (binary search): %zu; records in archive: "
              "%zu\n\n",
              stats.comparisons, archive.root().children[0]->children.size());

  // --- Sec. 6: the same archive built with the external-memory archiver,
  // through the Store v2 "extmem" backend. The store gets a private work
  // directory and removes it on destruction; Stats() folds in the I/O
  // counters.
  xarch::StoreOptions store_options;
  store_options.spec = Spec();
  store_options.extmem.memory_budget_rows = 256;  // deliberately tiny
  store_options.extmem.fan_in = 4;
  const size_t page_bytes = store_options.extmem.page_bytes;
  auto ext = xarch::StoreRegistry::Create("extmem", std::move(store_options));
  if (!ext.ok()) Fail(ext.status());
  for (const std::string& text : version_texts) {
    if (xarch::Status st = (*ext)->Append(text); !st.ok()) Fail(st);
  }
  const xarch::extmem::IoStats io = (*ext)->Stats().io;
  std::printf("external-memory archiver (M=256 rows, fan-in 4):\n");
  std::printf("  sorted runs: %llu, merge passes: %llu\n",
              static_cast<unsigned long long>(io.run_count),
              static_cast<unsigned long long>(io.merge_passes));
  std::printf("  pages read: %llu, pages written: %llu (B=%zu)\n",
              static_cast<unsigned long long>(io.PagesRead(page_bytes)),
              static_cast<unsigned long long>(io.PagesWritten(page_bytes)),
              page_bytes);
  auto check = (*ext)->Retrieve(1);
  if (!check.ok()) Fail(check.status());
  auto reparsed = xarch::xml::Parse(*check);
  if (!reparsed.ok()) Fail(reparsed.status());
  std::printf("  release 1 retrieved from the on-disk archive: %zu records\n",
              (*reparsed)->FindChildren("Record").size());
  return 0;
}
