// Temporal queries at scale: the XAQL query engine over timestamp trees
// and the key index (Sec. 7), plus the external-memory archiver (Sec. 6).
//
// Builds a Swiss-Prot-like archive over several releases behind the Store
// API, then issues the paper's workloads as XAQL queries:
//  - retrieves an early release, with EXPLAIN reporting indexed vs naive
//    probe counts;
//  - looks up a record's history;
//  - diffs two releases under a key path.
// Finally repeats the archiving with the external-memory archiver under a
// tiny memory budget and reports its I/O.

#include <cstdio>

#include "synth/swissprot.h"
#include "xarch/xarch.h"

namespace {

void Fail(const xarch::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  std::exit(1);
}

xarch::keys::KeySpecSet Spec() {
  auto spec = xarch::keys::ParseKeySpecSet(
      xarch::synth::SwissProtGenerator::KeySpecText());
  if (!spec.ok()) Fail(spec.status());
  return std::move(*spec);
}

void RunQuery(xarch::Store& store, const std::string& q) {
  std::printf("xaql> %s\n", q.c_str());
  xarch::StringSink sink;
  if (xarch::Status st = store.Query(q, sink); !st.ok()) Fail(st);
  // Show at most a screenful.
  const std::string& out = sink.data();
  if (out.size() > 600) {
    std::printf("%.*s... (%zu bytes)\n\n", 600, out.c_str(), out.size());
  } else {
    std::printf("%s\n", out.c_str());
  }
}

}  // namespace

int main() {
  constexpr int kReleases = 8;
  xarch::synth::SwissProtGenerator::Options gen_options;
  gen_options.initial_records = 60;
  xarch::synth::SwissProtGenerator gen(gen_options);

  // An indexed archive store: History() and Query() run over the Sec. 7
  // index structures, rebuilt lazily after ingest.
  xarch::StoreOptions options;
  options.spec = Spec();
  options.use_index = true;
  auto store_or = xarch::StoreRegistry::Create("archive", std::move(options));
  if (!store_or.ok()) Fail(store_or.status());
  xarch::Store& store = **store_or;

  std::vector<std::string> version_texts;
  std::string probe_pac;
  for (int r = 0; r < kReleases; ++r) {
    auto doc = gen.NextVersion();
    if (r == 0) {
      probe_pac = doc->FindChild("Record")->FindChild("pac")->TextContent();
    }
    version_texts.push_back(xarch::xml::Serialize(*doc));
  }
  std::vector<std::string_view> views(version_texts.begin(),
                                      version_texts.end());
  if (xarch::Status st = store.AppendBatch(views); !st.ok()) Fail(st);
  std::printf("archive store: %u releases, %zu archive nodes\n\n",
              store.version_count(), store.Stats().node_count);

  // --- Sec. 7.1: version retrieval with timestamp trees. EXPLAIN runs
  // the query (results counted, not streamed) and reports the plan plus
  // indexed vs naive probe counts from the same pass.
  RunQuery(store, "explain /ROOT @ version 1");

  // --- Sec. 7.2: history of a record via the key index.
  RunQuery(store, "/ROOT/Record[pac=\"" + probe_pac + "\"] history");

  // --- Sec. 1: key-based changes between two releases, scoped to a path.
  RunQuery(store, "/ROOT diff 1 " + std::to_string(kReleases));

  // --- Sec. 6: the same archive built with the external-memory archiver,
  // through the Store v2 "extmem" backend. The store gets a private work
  // directory and removes it on destruction; Stats() folds in the I/O
  // counters.
  xarch::StoreOptions store_options;
  store_options.spec = Spec();
  store_options.extmem.memory_budget_rows = 256;  // deliberately tiny
  store_options.extmem.fan_in = 4;
  const size_t page_bytes = store_options.extmem.page_bytes;
  auto ext = xarch::StoreRegistry::Create("extmem", std::move(store_options));
  if (!ext.ok()) Fail(ext.status());
  for (const std::string& text : version_texts) {
    if (xarch::Status st = (*ext)->Append(text); !st.ok()) Fail(st);
  }
  const xarch::extmem::IoStats io = (*ext)->Stats().io;
  std::printf("external-memory archiver (M=256 rows, fan-in 4):\n");
  std::printf("  sorted runs: %llu, merge passes: %llu\n",
              static_cast<unsigned long long>(io.run_count),
              static_cast<unsigned long long>(io.merge_passes));
  std::printf("  pages read: %llu, pages written: %llu (B=%zu)\n",
              static_cast<unsigned long long>(io.PagesRead(page_bytes)),
              static_cast<unsigned long long>(io.PagesWritten(page_bytes)),
              page_bytes);
  // Even the on-disk backend answers XAQL queries — through the generic
  // interface-level plan (Retrieve + navigate).
  xarch::StringSink first;
  if (xarch::Status st =
          (*ext)->Query("/ROOT/Record[pac=\"" + probe_pac +
                            "\"] @ version 1",
                        first);
      !st.ok()) {
    Fail(st);
  }
  std::printf("  record pac=%s at release 1, straight off the on-disk "
              "archive: %zu bytes\n",
              probe_pac.c_str(), first.data().size());
  return 0;
}
