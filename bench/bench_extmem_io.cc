// E10 — Sec. 6: external-memory archiver page I/O versus memory budget.
// Sweeps the memory budget M (rows held during run generation) and reports
// runs, merge passes and page I/O: the O((N/B) log_{M/B}(N/B)) behaviour —
// smaller budgets mean more runs and more merge passes.
// Also verifies the external archive equals the in-memory one.

#include <cstdio>
#include <filesystem>

#include "core/archive.h"
#include "extmem/external_archiver.h"
#include "xml/parser.h"
#include "synth/swissprot.h"
#include "xml/serializer.h"

int main() {
  using namespace xarch;
  constexpr int kReleases = 5;

  // Pre-generate the releases once.
  synth::SwissProtGenerator::Options gen_options;
  gen_options.initial_records = 60;
  synth::SwissProtGenerator gen(gen_options);
  std::vector<std::string> releases;
  for (int r = 0; r < kReleases; ++r) {
    releases.push_back(xml::Serialize(*gen.NextVersion()));
  }

  std::printf("# E10 — external archiver: I/O vs memory budget "
              "(%d Swiss-Prot releases, fan-in 4, B=4096)\n",
              kReleases);
  std::printf("%-12s %8s %8s %12s %12s\n", "M (rows)", "runs", "passes",
              "pages read", "pages written");

  std::string reference_xml;
  for (size_t budget : {64, 256, 1024, 8192, 65536}) {
    auto spec =
        keys::ParseKeySpecSet(synth::SwissProtGenerator::KeySpecText());
    extmem::ExternalArchiver::Options options;
    options.work_dir = std::filesystem::temp_directory_path() /
                       ("xarch_bench_extmem_" + std::to_string(budget));
    options.memory_budget_rows = budget;
    options.fan_in = 4;
    extmem::ExternalArchiver ext(std::move(*spec), options);
    for (const auto& text : releases) {
      auto doc = xml::Parse(text);
      Status st = ext.AddVersion(**doc);
      if (!st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return 1;
      }
    }
    const auto& io = ext.stats();
    std::printf("%-12zu %8llu %8llu %12llu %12llu\n", budget,
                static_cast<unsigned long long>(io.run_count),
                static_cast<unsigned long long>(io.merge_passes),
                static_cast<unsigned long long>(io.PagesRead(4096)),
                static_cast<unsigned long long>(io.PagesWritten(4096)));
    auto xml = ext.ToXml();
    if (xml.ok()) {
      if (reference_xml.empty()) {
        reference_xml = *xml;
      } else if (reference_xml != *xml) {
        std::printf("  WARNING: archive differs across budgets!\n");
      }
    }
    std::filesystem::remove_all(options.work_dir);
  }

  // Equivalence with the in-memory archiver.
  auto spec = keys::ParseKeySpecSet(synth::SwissProtGenerator::KeySpecText());
  core::Archive mem(std::move(*spec));
  for (const auto& text : releases) {
    auto doc = xml::Parse(text);
    Status st = mem.AddVersion(**doc);
    (void)st;
  }
  auto spec2 = keys::ParseKeySpecSet(synth::SwissProtGenerator::KeySpecText());
  auto loaded = core::Archive::FromXml(reference_xml, std::move(*spec2));
  bool equal = loaded.ok();
  if (equal) {
    for (Version v = 1; v <= kReleases; ++v) {
      auto a = loaded->RetrieveVersion(v);
      auto b = mem.RetrieveVersion(v);
      if (!a.ok() || !b.ok()) {
        equal = false;
        break;
      }
      // Compare by node count (sibling order differs by design).
      if ((*a)->CountNodes() != (*b)->CountNodes()) equal = false;
    }
  }
  std::printf("\nexternal archive reproduces every version of the in-memory "
              "one: %s\n",
              equal ? "yes" : "NO");
  std::printf("expected shape: runs and merge passes fall as M grows; page "
              "I/O falls accordingly.\n");
  return 0;
}
