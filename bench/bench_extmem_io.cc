// E10 — Sec. 6: external-memory archiver page I/O versus memory budget.
// Sweeps the memory budget M (rows held during run generation) and reports
// runs, merge passes and page I/O: the O((N/B) log_{M/B}(N/B)) behaviour —
// smaller budgets mean more runs and more merge passes.
// Also verifies the external archive equals the in-memory one.
//
// Drives the archiver through the Store v2 "extmem" backend: ingest via
// Store::Append, I/O counters via Stats().io, archive bytes via
// StoredBytes().

#include <cstdio>

#include "core/archive.h"
#include "json_report.h"
#include "xarch/store.h"
#include "xarch/store_registry.h"
#include "xml/parser.h"
#include "synth/swissprot.h"
#include "xml/serializer.h"

int main(int argc, char** argv) {
  using namespace xarch;
  bench::JsonReport report("bench_extmem_io");
  constexpr int kReleases = 5;
  constexpr size_t kPageBytes = 4096;

  // Pre-generate the releases once.
  synth::SwissProtGenerator::Options gen_options;
  gen_options.initial_records = 60;
  synth::SwissProtGenerator gen(gen_options);
  std::vector<std::string> releases;
  for (int r = 0; r < kReleases; ++r) {
    releases.push_back(xml::Serialize(*gen.NextVersion()));
  }

  std::printf("# E10 — external archiver: I/O vs memory budget "
              "(%d Swiss-Prot releases, fan-in 4, B=%zu)\n",
              kReleases, kPageBytes);
  std::printf("%-12s %8s %8s %12s %12s\n", "M (rows)", "runs", "passes",
              "pages read", "pages written");

  std::string reference_xml;
  for (size_t budget : {64, 256, 1024, 8192, 65536}) {
    auto spec =
        keys::ParseKeySpecSet(synth::SwissProtGenerator::KeySpecText());
    StoreOptions options;
    options.spec = std::move(*spec);
    options.extmem.memory_budget_rows = budget;
    options.extmem.fan_in = 4;
    options.extmem.page_bytes = kPageBytes;
    auto store = StoreRegistry::Create("extmem", std::move(options));
    if (!store.ok()) {
      std::fprintf(stderr, "%s\n", store.status().ToString().c_str());
      return 1;
    }
    for (const auto& text : releases) {
      Status st = (*store)->Append(text);
      if (!st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return 1;
      }
    }
    const extmem::IoStats io = (*store)->Stats().io;
    std::printf("%-12zu %8llu %8llu %12llu %12llu\n", budget,
                static_cast<unsigned long long>(io.run_count),
                static_cast<unsigned long long>(io.merge_passes),
                static_cast<unsigned long long>(io.PagesRead(kPageBytes)),
                static_cast<unsigned long long>(io.PagesWritten(kPageBytes)));
    report.BeginRow();
    report.Add("memory_budget_rows", budget);
    report.Add("runs", io.run_count);
    report.Add("merge_passes", io.merge_passes);
    report.Add("pages_read", io.PagesRead(kPageBytes));
    report.Add("pages_written", io.PagesWritten(kPageBytes));
    std::string xml = (*store)->StoredBytes();
    if (!xml.empty()) {
      if (reference_xml.empty()) {
        reference_xml = xml;
      } else if (reference_xml != xml) {
        std::printf("  WARNING: archive differs across budgets!\n");
      }
    }
    // The store owns its work directory and removes it on destruction.
  }

  // Equivalence with the in-memory archiver.
  auto spec = keys::ParseKeySpecSet(synth::SwissProtGenerator::KeySpecText());
  core::Archive mem(std::move(*spec));
  for (const auto& text : releases) {
    auto doc = xml::Parse(text);
    Status st = mem.AddVersion(**doc);
    (void)st;
  }
  auto spec2 = keys::ParseKeySpecSet(synth::SwissProtGenerator::KeySpecText());
  auto loaded = core::Archive::FromXml(reference_xml, std::move(*spec2));
  bool equal = loaded.ok();
  if (equal) {
    for (Version v = 1; v <= kReleases; ++v) {
      auto a = loaded->RetrieveVersion(v);
      auto b = mem.RetrieveVersion(v);
      if (!a.ok() || !b.ok()) {
        equal = false;
        break;
      }
      // Compare by node count (sibling order differs by design).
      if ((*a)->CountNodes() != (*b)->CountNodes()) equal = false;
    }
  }
  std::printf("\nexternal archive reproduces every version of the in-memory "
              "one: %s\n",
              equal ? "yes" : "NO");
  std::printf("expected shape: runs and merge passes fall as M grows; page "
              "I/O falls accordingly.\n");
  return report.Write(bench::JsonPathFromArgs(argc, argv)) ? 0 : 1;
}
