// E11 — Sec. 7.1: version retrieval, full scan vs timestamp trees.
// Builds a long accretive history, then retrieves versions of different
// ages. For an old (small) version the timestamp trees prune most of the
// archive: probes track 2α-1+2α·log(k/α) rather than the full child count.

#include <chrono>
#include <cstdio>

#include "core/archive.h"
#include "json_report.h"
#include "index/archive_index.h"
#include "synth/omim.h"

int main(int argc, char** argv) {
  using namespace xarch;
  bench::JsonReport report("bench_retrieval_index");
  constexpr int kVersions = 40;
  synth::OmimGenerator::Options gen_options;
  gen_options.initial_records = 40;
  gen_options.insert_ratio = 0.08;  // strongly accretive: late versions big
  gen_options.delete_ratio = 0.0;
  synth::OmimGenerator gen(gen_options);
  auto spec = keys::ParseKeySpecSet(synth::OmimGenerator::KeySpecText());
  core::Archive archive(std::move(*spec));
  for (int v = 0; v < kVersions; ++v) {
    Status st = archive.AddVersion(*gen.NextVersion());
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
  }
  index::ArchiveIndex idx(archive);
  std::printf("# E11 — retrieval: scan vs timestamp trees (%d accretive "
              "versions, %zu archive nodes, index %zu tree nodes)\n",
              kVersions, archive.CountNodes(), idx.TreeNodeCount());
  size_t full_scan_nodes = archive.CountNodes();
  std::printf("%-8s %14s %18s %14s %14s\n", "version", "tree probes",
              "full scan (nodes)", "scan us", "indexed us");
  for (Version v : {1u, 10u, 20u, 30u, 40u}) {
    index::ProbeStats stats;
    auto t0 = std::chrono::steady_clock::now();
    auto indexed = idx.RetrieveVersion(v, &stats);
    auto t1 = std::chrono::steady_clock::now();
    auto scanned = archive.RetrieveVersion(v);
    auto t2 = std::chrono::steady_clock::now();
    if (!indexed.ok() || !scanned.ok()) {
      std::fprintf(stderr, "retrieval failed\n");
      return 1;
    }
    double indexed_us =
        std::chrono::duration<double, std::micro>(t1 - t0).count();
    double scan_us =
        std::chrono::duration<double, std::micro>(t2 - t1).count();
    std::printf("%-8u %14zu %18zu %14.1f %14.1f\n", v, stats.tree_probes,
                full_scan_nodes, scan_us, indexed_us);
    report.BeginRow();
    report.Add("version", v);
    report.Add("tree_probes", stats.tree_probes);
    report.Add("full_scan_nodes", full_scan_nodes);
    report.Add("scan_us", scan_us);
    report.Add("indexed_us", indexed_us);
  }
  std::printf("\nexpected shape: retrieving an early (small) version probes "
              "far fewer tree nodes than the full scan touches; the "
              "advantage shrinks as α approaches k for recent versions "
              "(Sec. 7.1).\n");
  return report.Write(bench::JsonPathFromArgs(argc, argv)) ? 0 : 1;
}
