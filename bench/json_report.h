#ifndef XARCH_BENCH_JSON_REPORT_H_
#define XARCH_BENCH_JSON_REPORT_H_

// Machine-readable bench output. Every bench accepts `--json <path>` and
// mirrors its printed table into a JSON document
//
//   {"bench": "<name>", "rows": [{"col": value, ...}, ...]}
//
// so BENCH_*.json trajectories can be recorded and compared across
// commits. (bench_micro_algorithms is the exception: Google Benchmark
// already ships --benchmark_format=json.)

#include <cstdio>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace xarch::bench {

class JsonReport {
 public:
  explicit JsonReport(std::string bench) : bench_(std::move(bench)) {}

  /// Starts a new row; subsequent Add() calls fill it.
  void BeginRow() { rows_.emplace_back(); }

  void Add(const std::string& key, const std::string& value) {
    AddRendered(key, Quote(value));
  }
  void Add(const std::string& key, const char* value) {
    AddRendered(key, Quote(value));
  }
  void Add(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", value);
    AddRendered(key, buf);
  }
  void Add(const std::string& key, bool value) {
    AddRendered(key, value ? "true" : "false");
  }
  template <typename Int,
            typename = std::enable_if_t<std::is_integral<Int>::value>>
  void Add(const std::string& key, Int value) {
    AddRendered(key, std::to_string(value));
  }

  /// Writes the report; a null/empty path is a no-op (bench ran without
  /// --json). Returns false when the file cannot be written.
  bool Write(const char* path) const {
    if (path == nullptr || path[0] == '\0') return true;
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path);
      return false;
    }
    std::fprintf(f, "{\"bench\": %s, \"rows\": [", Quote(bench_).c_str());
    for (size_t r = 0; r < rows_.size(); ++r) {
      std::fprintf(f, "%s\n  {", r == 0 ? "" : ",");
      for (size_t c = 0; c < rows_[r].size(); ++c) {
        std::fprintf(f, "%s%s: %s", c == 0 ? "" : ", ",
                     Quote(rows_[r][c].first).c_str(),
                     rows_[r][c].second.c_str());
      }
      std::fprintf(f, "}");
    }
    std::fprintf(f, "\n]}\n");
    std::fclose(f);
    return true;
  }

 private:
  void AddRendered(const std::string& key, std::string rendered) {
    if (rows_.empty()) rows_.emplace_back();
    rows_.back().emplace_back(key, std::move(rendered));
  }

  static std::string Quote(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out += buf;
          } else {
            out += c;
          }
      }
    }
    out += '"';
    return out;
  }

  std::string bench_;
  std::vector<std::vector<std::pair<std::string, std::string>>> rows_;
};

/// The argument after "--json", or nullptr when absent.
inline const char* JsonPathFromArgs(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--json") return argv[i + 1];
  }
  return nullptr;
}

/// True if `flag` (e.g. "--smoke") appears among the arguments.
inline bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == flag) return true;
  }
  return false;
}

}  // namespace xarch::bench

#endif  // XARCH_BENCH_JSON_REPORT_H_
