// E4 — Fig. 13: XMark under the random change simulator at 1.66% and 10%
// deletion/insertion/modification per version (20 versions each).
// Expected shape: at 1.66% the incremental diff repository marginally
// beats the archive; at 10% the archive catches up or wins (changed values
// recur and are revived rather than re-stored); xmill(archive) beats
// gzip(inc diffs) in both.

#include "storage_sweep.h"
#include "synth/xmark.h"
#include "xml/serializer.h"

int main(int argc, char** argv) {
  using namespace xarch;
  bench::SweepOptions options;
  bench::JsonReport report("bench_fig13_xmark_ratio");
  options.json = &report;
  options.with_cumulative = false;
  options.with_compression = true;
  options.archive_backend = "archive";  // Store v2 registry name

  for (double pct : {1.66, 10.0}) {
    synth::XMarkGenerator::Options gen_options;
    gen_options.items = 20;
    gen_options.people = 35;
    gen_options.open_auctions = 20;
    synth::XMarkGenerator gen(gen_options);
    bool first = true;
    bench::RunStorageSweep(
        "Fig. 13 Auction Data, " + std::to_string(pct) +
            "%/" + std::to_string(pct) + "%/" + std::to_string(pct) +
            "% change ratio",
        synth::XMarkGenerator::KeySpecText(), 20,
        [&] {
          if (!first) gen.MutateRandom(pct);
          first = false;
          return gen.Current();
        },
        options);
  }
  if (!report.Write(bench::JsonPathFromArgs(argc, argv))) return 1;
  return 0;
}
