// E17 — durability: snapshot save/open throughput and ingest-log replay
// latency as the archive grows.
//
// For each backend and archive size the bench measures
//   save      — Store::SaveToFile wall time and the snapshot bytes/sec
//   open      — StoreRegistry::OpenFromFile wall time (includes container
//               CRC verification, LZSS decompression, archive reload and
//               index rebuild-on-open)
//   open(buf) / open(mmap)
//             — the same open against a REAL on-disk file, once through
//               buffered posix reads and once zero-copy out of an mmap
//               mapping, so the two open paths stay comparable
//   replay    — reopening a durable store whose WHOLE state lives in the
//               ingest log (worst-case recovery: no snapshot to start from)
//
// Save, the in-memory open, and the WAL replay all run on MemVfs, so the
// numbers measure the persistence stack, not the machine's disk. Only the
// buffered-vs-mmap comparison touches a real temp file (it has to).
//
// `--smoke` shrinks the workload for CI; `--json out.json` records rows.

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "compress/lzss.h"
#include "json_report.h"
#include "synth/xmark.h"
#include "vfs/mem_vfs.h"
#include "vfs/vfs.h"
#include "xarch/durable.h"
#include "xarch/store.h"
#include "xarch/store_registry.h"
#include "xml/serializer.h"

namespace {

using namespace xarch;

struct Config {
  bool smoke = false;
  std::vector<int> version_counts = {8, 16, 32};
  const char* json_path = "";
};

double Seconds(std::chrono::steady_clock::time_point a,
               std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

keys::KeySpecSet MustSpec() {
  auto spec = keys::ParseKeySpecSet(synth::XMarkGenerator::KeySpecText());
  if (!spec.ok()) {
    std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(spec).value();
}

std::vector<std::string> MakeVersions(int n, bool smoke) {
  synth::XMarkGenerator::Options options;
  options.items = smoke ? 8 : 16;
  options.people = smoke ? 14 : 30;
  options.open_auctions = smoke ? 8 : 16;
  synth::XMarkGenerator gen(options);
  std::vector<std::string> out;
  out.reserve(n);
  for (int i = 0; i < n; ++i) {
    out.push_back(xml::Serialize(*gen.Current()));
    gen.MutateRandom(smoke ? 8.0 : 16.0);
  }
  return out;
}

struct ScratchDir {
  std::string path;
  explicit ScratchDir(const std::string& tag) {
    path = (std::filesystem::temp_directory_path() /
            ("xarch_bench_persist_" + tag + "_" +
             std::to_string(::getpid())))
               .string();
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~ScratchDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

void Die(const Status& status, const char* what) {
  if (status.ok()) return;
  std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
  std::exit(1);
}

void RunBackend(const std::string& backend,
                const std::vector<std::string>& all_versions,
                const Config& config, bench::JsonReport* report) {
  std::printf("%-14s %8s %12s %10s %10s %10s %10s %12s %12s\n",
              backend.c_str(), "versions", "snapshot B", "save ms", "open ms",
              "buf ms", "mmap ms", "save MB/s", "replay ms");
  for (int n : config.version_counts) {
    StoreOptions options;
    options.spec = MustSpec();
    auto store = StoreRegistry::Create(backend, std::move(options));
    Die(store.status(), "create");
    std::vector<std::string_view> views(all_versions.begin(),
                                        all_versions.begin() + n);
    Die((*store)->AppendBatch(views), "ingest");

    // Save + open on the in-memory VFS: pure persistence-stack time.
    vfs::MemVfs mem;
    const std::string mem_path = "store.xar";
    auto t0 = std::chrono::steady_clock::now();
    Die((*store)->SaveToFile(mem_path, &mem), "save");
    auto t1 = std::chrono::steady_clock::now();
    auto reopened = StoreRegistry::Open(mem_path, {}, &mem);
    Die(reopened.status(), "open");
    auto t2 = std::chrono::steady_clock::now();
    if ((*reopened)->version_count() != (*store)->version_count()) {
      std::fprintf(stderr, "round-trip lost versions\n");
      std::exit(1);
    }

    // The same snapshot on a real file: buffered posix open vs zero-copy
    // mmap open.
    ScratchDir dir(backend + "_" + std::to_string(n));
    const std::string disk_path =
        (std::filesystem::path(dir.path) / "store.xar").string();
    Die((*store)->SaveToFile(disk_path), "save to disk");
    auto tb0 = std::chrono::steady_clock::now();
    auto buffered = StoreRegistry::Open(disk_path, {}, vfs::Vfs::Posix());
    Die(buffered.status(), "open buffered");
    auto tb1 = std::chrono::steady_clock::now();
    auto mapped = StoreRegistry::Open(disk_path, {}, vfs::Vfs::Mmap());
    Die(mapped.status(), "open mmap");
    auto tb2 = std::chrono::steady_clock::now();
    if ((*buffered)->version_count() != (*mapped)->version_count()) {
      std::fprintf(stderr, "buffered and mmap opens disagree\n");
      std::exit(1);
    }

    // Worst-case recovery: a durable store with every version in the log,
    // also on MemVfs.
    const std::string durable_dir = "durable";
    {
      DurableOptions durable_options;
      durable_options.backend = backend;
      durable_options.store.spec = MustSpec();
      durable_options.fsync = persist::FsyncPolicy::kNever;
      durable_options.vfs = &mem;
      auto durable = OpenDurable(durable_dir, std::move(durable_options));
      Die(durable.status(), "durable create");
      Die((*durable)->AppendBatch(views), "durable ingest");
    }
    auto t3 = std::chrono::steady_clock::now();
    {
      DurableOptions durable_options;
      durable_options.backend = backend;
      durable_options.store.spec = MustSpec();
      durable_options.fsync = persist::FsyncPolicy::kNever;
      durable_options.vfs = &mem;
      auto recovered = OpenDurable(durable_dir, std::move(durable_options));
      Die(recovered.status(), "durable replay");
      if ((*recovered)->version_count() != static_cast<Version>(n)) {
        std::fprintf(stderr, "log replay lost versions\n");
        std::exit(1);
      }
    }
    auto t4 = std::chrono::steady_clock::now();

    // Cold-open shootout (archive family only — the backends that honor
    // StoreOptions::snapshot_format): the same store saved as legacy XAR1
    // and as XAR2, each cold-opened from a real file, plus the first
    // query answered after the open. The XAR1 open re-parses the archive
    // text whichever VFS reads it; the XAR2 mmap open is O(mmap +
    // CRC verify) and the first query navigates the mapped bytes.
    const bool archive_family =
        backend == "archive" || backend == "archive-weave";
    double open_parse_s = 0, open_xar1_mmap_s = 0, open_xar2_mmap_s = 0;
    double fq_parse_s = 0, fq_xar1_mmap_s = 0, fq_xar2_mmap_s = 0;
    if (archive_family) {
      StoreOptions xar1_options;
      xar1_options.spec = MustSpec();
      xar1_options.snapshot_format = 1;
      auto xar1_store = StoreRegistry::Create(backend,
                                              std::move(xar1_options));
      Die(xar1_store.status(), "create xar1");
      Die((*xar1_store)->AppendBatch(views), "ingest xar1");
      const std::string xar1_path =
          (std::filesystem::path(dir.path) / "store_v1.xar").string();
      Die((*xar1_store)->SaveToFile(xar1_path), "save xar1");

      const std::string first_query = "/site @ version " + std::to_string(n);
      std::string parse_out, xar1_out, xar2_out;
      auto cold_open = [&](const std::string& path, vfs::Vfs* vfs,
                           double* open_s, double* query_s,
                           std::string* out) {
        auto c0 = std::chrono::steady_clock::now();
        auto opened = StoreRegistry::Open(path, {}, vfs);
        auto c1 = std::chrono::steady_clock::now();
        Die(opened.status(), "cold open");
        StringSink sink;
        Die((*opened)->Query(first_query, sink), "first query");
        auto c2 = std::chrono::steady_clock::now();
        *open_s = Seconds(c0, c1);
        *query_s = Seconds(c1, c2);
        *out = std::move(sink).Take();
      };
      cold_open(xar1_path, vfs::Vfs::Posix(), &open_parse_s, &fq_parse_s,
                &parse_out);
      cold_open(xar1_path, vfs::Vfs::Mmap(), &open_xar1_mmap_s,
                &fq_xar1_mmap_s, &xar1_out);
      cold_open(disk_path, vfs::Vfs::Mmap(), &open_xar2_mmap_s,
                &fq_xar2_mmap_s, &xar2_out);
      if (parse_out != xar1_out || parse_out != xar2_out) {
        std::fprintf(stderr, "cold-open query outputs disagree\n");
        std::exit(1);
      }
    }

    const uint64_t snapshot_bytes = *mem.FileSize(mem_path);
    const double save_s = Seconds(t0, t1);
    const double open_s = Seconds(t1, t2);
    const double open_buf_s = Seconds(tb0, tb1);
    const double open_mmap_s = Seconds(tb1, tb2);
    const double replay_s = Seconds(t3, t4);
    const double save_mbps =
        save_s > 0 ? static_cast<double>(snapshot_bytes) / save_s / 1e6 : 0;
    std::printf("%-14s %8d %12llu %10.2f %10.2f %10.2f %10.2f %12.1f %12.2f\n",
                "", n, static_cast<unsigned long long>(snapshot_bytes),
                save_s * 1e3, open_s * 1e3, open_buf_s * 1e3,
                open_mmap_s * 1e3, save_mbps, replay_s * 1e3);
    if (archive_family) {
      std::printf(
          "%-14s %8s  cold-open: parse %.2f ms | xar1-mmap %.2f ms | "
          "xar2-mmap %.2f ms   first-query: %.2f | %.2f | %.2f ms\n",
          "", "", open_parse_s * 1e3, open_xar1_mmap_s * 1e3,
          open_xar2_mmap_s * 1e3, fq_parse_s * 1e3, fq_xar1_mmap_s * 1e3,
          fq_xar2_mmap_s * 1e3);
    }
    if (report != nullptr) {
      report->BeginRow();
      report->Add("backend", backend);
      report->Add("versions", n);
      report->Add("snapshot_bytes",
                  static_cast<unsigned long long>(snapshot_bytes));
      report->Add("save_ms", save_s * 1e3);
      report->Add("open_ms", open_s * 1e3);
      report->Add("open_buffered_ms", open_buf_s * 1e3);
      report->Add("open_mmap_ms", open_mmap_s * 1e3);
      report->Add("save_mb_per_s", save_mbps);
      report->Add("log_replay_ms", replay_s * 1e3);
      if (archive_family) {
        report->Add("open_parse_ms", open_parse_s * 1e3);
        report->Add("open_xar1_mmap_ms", open_xar1_mmap_s * 1e3);
        report->Add("open_xar2_mmap_ms", open_xar2_mmap_s * 1e3);
        report->Add("first_query_parse_ms", fq_parse_s * 1e3);
        report->Add("first_query_xar1_mmap_ms", fq_xar1_mmap_s * 1e3);
        report->Add("first_query_xar2_mmap_ms", fq_xar2_mmap_s * 1e3);
      }
    }
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      config.smoke = true;
      config.version_counts = {4, 8};
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      config.json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--json out.json]\n",
                   argv[0]);
      return 2;
    }
  }

  const int max_versions = config.version_counts.back();
  std::vector<std::string> versions = MakeVersions(max_versions, config.smoke);

  bench::JsonReport report("bench_persistence");
  // The archive is the paper's subject; full-copy bounds snapshot size
  // from above and extmem exercises the raw row-file snapshot path.
  const std::vector<std::string> backends =
      config.smoke
          ? std::vector<std::string>{"archive", "full-copy"}
          : std::vector<std::string>{"archive", "archive-weave", "incr-diff",
                                     "full-copy", "compressed", "extmem"};
  for (const std::string& backend : backends) {
    RunBackend(backend, versions, config, &report);
  }

  // Compression throughput of the LZSS match-finder over the bench's own
  // XML corpus — the knob the snapshot save path spends most of its time
  // in. Recorded so match-finder changes show up as a delta in this JSON.
  {
    std::string corpus;
    for (const std::string& v : versions) corpus += v;
    const int reps = config.smoke ? 2 : 8;
    size_t compressed_bytes = 0;
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < reps; ++i) {
      compressed_bytes = compress::LzssCompress(corpus).size();
    }
    auto t1 = std::chrono::steady_clock::now();
    const double sec = Seconds(t0, t1) / reps;
    const double mbps =
        sec > 0 ? static_cast<double>(corpus.size()) / sec / 1e6 : 0;
    std::printf("%-14s %12zu in B %10zu out B %12.1f MB/s\n", "lzss-compress",
                corpus.size(), compressed_bytes, mbps);
    report.BeginRow();
    report.Add("backend", "lzss-compress");
    report.Add("input_bytes", static_cast<unsigned long long>(corpus.size()));
    report.Add("compressed_bytes",
               static_cast<unsigned long long>(compressed_bytes));
    report.Add("compress_mb_per_s", mbps);
  }
  if (!report.Write(config.json_path)) return 1;
  return 0;
}
