// E14 — the Sec. 9 open issue: checkpointing. "A fresh archive may be
// created at every kth addition and in the case of a delta-based
// repository, an entire version of data is stored as a whole for every
// kth version." Sweeps k and reports the storage / retrieval-cost
// trade-off for both systems under the worst-case key-mutation workload
// (where checkpointing helps the archive most).
//
// Both systems run behind Store v2 ("checkpoint-archive" and
// "checkpoint-diff"), with segment counts and worst-case delta
// applications read off Stats().

#include <cstdio>

#include "json_report.h"
#include "synth/xmark.h"
#include "xarch/store.h"
#include "xarch/store_registry.h"
#include "xml/serializer.h"

int main(int argc, char** argv) {
  using namespace xarch;
  bench::JsonReport report("bench_checkpointing");
  constexpr int kVersions = 16;
  std::printf("# E14 — checkpointing trade-off (%d versions, key-mutation "
              "5%%/version)\n",
              kVersions);
  std::printf("%-6s %16s %18s %10s %22s\n", "k", "archive bytes",
              "diff repo bytes", "segments", "max delta applications");

  xml::SerializeOptions flat;
  flat.indent_width = 0;

  for (size_t k : {1, 2, 4, 8, 16}) {
    synth::XMarkGenerator::Options gen_options;
    gen_options.items = 12;
    gen_options.people = 18;
    gen_options.open_auctions = 12;
    synth::XMarkGenerator gen(gen_options);

    auto make = [&](const char* backend) {
      StoreOptions options;
      auto spec = keys::ParseKeySpecSet(synth::XMarkGenerator::KeySpecText());
      options.spec = std::move(*spec);
      options.checkpoint_every = k;
      auto store = StoreRegistry::Create(backend, std::move(options));
      if (!store.ok()) {
        std::fprintf(stderr, "%s\n", store.status().ToString().c_str());
        std::exit(1);
      }
      return std::move(store).value();
    };
    auto archive = make("checkpoint-archive");
    auto repo = make("checkpoint-diff");

    for (int v = 0; v < kVersions; ++v) {
      if (v > 0) gen.MutateKeys(5.0);
      std::string text = xml::Serialize(*gen.Current(), flat);
      for (Store* store : {archive.get(), repo.get()}) {
        if (Status st = store->Append(text); !st.ok()) {
          std::fprintf(stderr, "%s\n", st.ToString().c_str());
          return 1;
        }
      }
    }
    for (Version v = 1; v <= kVersions; ++v) {
      // All versions must remain retrievable under every k.
      if (!archive->Retrieve(v).ok() || !repo->Retrieve(v).ok()) {
        std::fprintf(stderr, "retrieval failed at k=%zu v=%u\n", k, v);
        return 1;
      }
    }
    StoreStats archive_stats = archive->Stats();
    StoreStats repo_stats = repo->Stats();
    std::printf("%-6zu %16zu %18zu %10zu %22zu\n", k,
                archive_stats.stored_bytes, repo_stats.stored_bytes,
                archive_stats.checkpoint_segments,
                repo_stats.max_retrieval_applications);
    report.BeginRow();
    report.Add("k", k);
    report.Add("archive_bytes", archive_stats.stored_bytes);
    report.Add("diff_repo_bytes", repo_stats.stored_bytes);
    report.Add("segments", archive_stats.checkpoint_segments);
    report.Add("max_delta_applications",
               repo_stats.max_retrieval_applications);
  }
  std::printf("\nexpected shape: k=1 stores every version in full (both "
              "systems identical cost, zero applications); large k saves "
              "space at the cost of longer delta chains (diff repo) or a "
              "worst-case-grown archive segment. Intermediate k bounds "
              "both.\n");
  return report.Write(bench::JsonPathFromArgs(argc, argv)) ? 0 : 1;
}
