// E17 — the network front-end: queries/second and client-observed tail
// latency (p50/p99) through xarchd's wire protocol, versus the same
// workload run in-process, so the table shows what the socket + framing
// layer costs on top of Store::Query.
//
// One Server over a durable archive store on scratch disk; N client
// threads, each with its own connection, drain a shared query quota over
// loopback. A mixed section adds one ingest client appending fresh XMark
// versions while the query clients run, exercising admission control and
// the WAL under concurrent network load.
//
// `--smoke` shrinks the workload for CI; `--json out.json` records rows.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "client/client.h"
#include "json_report.h"
#include "obs/metrics.h"
#include "server/server.h"
#include "synth/xmark.h"
#include "xarch/durable.h"
#include "xarch/store_registry.h"
#include "xml/serializer.h"

namespace {

using namespace xarch;

struct Config {
  bool smoke = false;
  int versions = 16;
  int ops_per_thread = 128;  // at 1 thread; total ops scale with threads
  std::vector<int> thread_counts = {1, 2, 4, 8};
};

void Die(const Status& status) {
  std::fprintf(stderr, "bench_server: %s\n", status.ToString().c_str());
  std::exit(1);
}

/// Per-thread latency samples merged into one percentile table.
struct LatencyTable {
  std::vector<uint64_t> micros;

  uint64_t Percentile(double q) {
    if (micros.empty()) return 0;
    std::sort(micros.begin(), micros.end());
    size_t rank = static_cast<size_t>(q * (micros.size() - 1) + 0.5);
    return micros[std::min(rank, micros.size() - 1)];
  }
};

struct RunResult {
  double seconds = 0;
  size_t ops = 0;
  LatencyTable latency;
  double qps() const { return seconds > 0 ? ops / seconds : 0; }
};

/// `threads` clients (one connection each) drain `total_ops` queries from
/// a shared queue, timing each round-trip from the client side.
RunResult MeasureNetworkReads(uint16_t port,
                              const std::vector<std::string>& queries,
                              int threads, size_t total_ops) {
  std::atomic<size_t> next{0};
  std::atomic<bool> go{false};
  std::vector<LatencyTable> samples(threads);
  auto worker = [&](int id) {
    auto client = Client::Connect("127.0.0.1", port);
    if (!client.ok()) Die(client.status());
    while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
    for (;;) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= total_ops) return;
      const auto t0 = std::chrono::steady_clock::now();
      CountingSink sink;
      // BUSY from admission control is part of the service's contract
      // under load: retry (it still costs a round-trip we observe).
      for (;;) {
        Status st = (*client)->Query(queries[i % queries.size()], sink);
        if (st.ok()) break;
        if ((*client)->last_error_code() != net::ErrorCode::kBusy) Die(st);
      }
      samples[id].micros.push_back(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - t0)
              .count());
    }
  };
  // Connect everything first, then time from the release barrier.
  std::vector<std::thread> pool;
  for (int t = 1; t < threads; ++t) pool.emplace_back(worker, t);
  const auto t0 = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  worker(0);
  for (auto& thread : pool) thread.join();
  const auto t1 = std::chrono::steady_clock::now();
  RunResult out;
  out.seconds = std::chrono::duration<double>(t1 - t0).count();
  out.ops = total_ops;
  for (LatencyTable& t : samples) {
    out.latency.micros.insert(out.latency.micros.end(), t.micros.begin(),
                              t.micros.end());
  }
  return out;
}

/// The in-process contrast: same query mix, same thread counts, straight
/// Store::Query calls with no socket between.
RunResult MeasureLocalReads(Store& store,
                            const std::vector<std::string>& queries,
                            int threads, size_t total_ops) {
  std::atomic<size_t> next{0};
  std::atomic<bool> go{false};
  auto worker = [&] {
    while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
    for (;;) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= total_ops) return;
      CountingSink sink;
      if (Status st = store.Query(queries[i % queries.size()], sink);
          !st.ok()) {
        Die(st);
      }
    }
  };
  std::vector<std::thread> pool;
  for (int t = 1; t < threads; ++t) pool.emplace_back(worker);
  const auto t0 = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  worker();
  for (auto& thread : pool) thread.join();
  RunResult out;
  out.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  out.ops = total_ops;
  return out;
}

/// `--flag N` integer argument, or `fallback` when absent.
long NumberFlag(int argc, char** argv, const char* flag, long fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == flag) {
      return std::strtol(argv[i + 1], nullptr, 10);
    }
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  Config config;
  config.smoke = bench::HasFlag(argc, argv, "--smoke");
  if (config.smoke) {
    config.versions = 6;
    config.ops_per_thread = 24;
    config.thread_counts = {1, 2, 4};
  }
  bench::JsonReport report("bench_server");
  const unsigned hardware = std::thread::hardware_concurrency();

  // Corpus: XMark versions, as in bench_concurrent.
  synth::XMarkGenerator::Options gen_options;
  gen_options.items = config.smoke ? 8 : 16;
  gen_options.people = config.smoke ? 14 : 30;
  gen_options.open_auctions = config.smoke ? 8 : 16;
  synth::XMarkGenerator gen(gen_options);
  std::vector<std::string> texts, extra;
  for (int v = 0; v < config.versions; ++v) {
    texts.push_back(xml::Serialize(*gen.Current()));
    gen.MutateRandom(config.smoke ? 8.0 : 16.0);
  }
  const int extra_count = config.smoke ? 4 : 8;
  for (int v = 0; v < extra_count; ++v) {
    extra.push_back(xml::Serialize(*gen.Current()));
    gen.MutateRandom(config.smoke ? 8.0 : 16.0);
  }

  // The served store: durable archive on scratch disk — the daemon's real
  // configuration, WAL and all, not an in-memory shortcut.
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("xarch_bench_server_" + std::to_string(::getpid())))
          .string();
  DurableOptions durable;
  durable.backend = "archive";
  {
    auto spec = keys::ParseKeySpecSet(synth::XMarkGenerator::KeySpecText());
    if (!spec.ok()) Die(spec.status());
    durable.store.spec = std::move(*spec);
    durable.store.use_index = true;
  }
  auto store = OpenDurable(dir, std::move(durable));
  if (!store.ok()) Die(store.status());
  {
    std::vector<std::string_view> views(texts.begin(), texts.end());
    if (Status st = (*store)->AppendBatch(views); !st.ok()) Die(st);
  }

  server::ServerOptions server_options;
  server_options.session_threads = 16;  // sessions must not be the cap
  server_options.max_inflight_queries = 8;
  // `--slow-query-us 0` makes the server build and log a span tree for
  // every query — the CI ASan smoke runs that way so the tracing path
  // itself gets sanitizer coverage under concurrent load.
  server_options.slow_query_us = NumberFlag(argc, argv, "--slow-query-us", -1);
  auto server = server::Server::Start(**store, server_options);
  if (!server.ok()) Die(server.status());
  const uint16_t port = (*server)->port();

  const std::string person = "/site/people/person[@id=\"person0\"]";
  const std::vector<std::pair<std::string, std::vector<std::string>>>
      workloads = {
          {"point", {person + " @ version 1",
                     person + " @ version " + std::to_string(config.versions)}},
          {"history", {person + " history"}},
      };

  std::printf("# E17 — xarchd network service (%d versions, "
              "hardware_concurrency=%u%s)\n",
              config.versions, hardware, config.smoke ? ", smoke" : "");
  std::printf("%-8s %-8s %8s %10s %12s %10s %10s %10s\n", "path", "workload",
              "threads", "ops", "qps", "p50us", "p99us", "net cost");

  for (const auto& [workload, queries] : workloads) {
    // Warm both paths (plans, page cache) outside the timed region.
    {
      auto warm = Client::Connect("127.0.0.1", port);
      if (!warm.ok()) Die(warm.status());
      auto result = (*warm)->QueryToString(queries[0]);
      if (!result.ok()) Die(result.status());
    }
    for (int threads : config.thread_counts) {
      const size_t total_ops =
          static_cast<size_t>(config.ops_per_thread) * threads;
      RunResult local =
          MeasureLocalReads(**store, queries, threads, total_ops);
      RunResult net =
          MeasureNetworkReads(port, queries, threads, total_ops);
      const uint64_t p50 = net.latency.Percentile(0.50);
      const uint64_t p99 = net.latency.Percentile(0.99);
      const double cost = net.qps() > 0 ? local.qps() / net.qps() : 0;
      std::printf("%-8s %-8s %8d %10zu %12.1f %10s %10s %10s\n", "local",
                  workload.c_str(), threads, local.ops, local.qps(), "-", "-",
                  "-");
      std::printf("%-8s %-8s %8d %10zu %12.1f %10llu %10llu %9.2fx\n",
                  "network", workload.c_str(), threads, net.ops, net.qps(),
                  static_cast<unsigned long long>(p50),
                  static_cast<unsigned long long>(p99), cost);
      report.BeginRow();
      report.Add("mode", "read");
      report.Add("workload", workload);
      report.Add("threads", threads);
      report.Add("ops", net.ops);
      report.Add("seconds", net.seconds);
      report.Add("qps", net.qps());
      report.Add("local_qps", local.qps());
      report.Add("latency_p50_us", p50);
      report.Add("latency_p99_us", p99);
      report.Add("hardware_concurrency", hardware);
    }
  }

  // Mixed: one ingest client appends fresh versions over the wire while
  // query clients run. Ingest holds the store's exclusive lock, so query
  // tail latency here shows writer/reader interference end to end.
  std::printf("\n# mixed: 1 network ingest client + query clients "
              "(%d extra versions)\n", extra_count);
  std::printf("%-8s %8s %10s %12s %10s %10s %14s\n", "path", "threads", "ops",
              "qps", "p50us", "p99us", "appends/sec");
  for (int threads : config.thread_counts) {
    const size_t total_ops =
        static_cast<size_t>(config.ops_per_thread) * threads;
    std::atomic<size_t> appended{0};
    double append_seconds = 0;
    std::thread writer([&] {
      auto client = Client::Connect("127.0.0.1", port);
      if (!client.ok()) Die(client.status());
      const auto w0 = std::chrono::steady_clock::now();
      for (const std::string& text : extra) {
        std::vector<std::string_view> one = {text};
        if ((*client)->Ingest(one).ok()) {
          appended.fetch_add(1, std::memory_order_relaxed);
        }
        std::this_thread::yield();
      }
      append_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - w0)
              .count();
    });
    RunResult net = MeasureNetworkReads(
        port, {person + " @ version 1", person + " history"}, threads,
        total_ops);
    writer.join();
    const double append_rate =
        append_seconds > 0 ? appended.load() / append_seconds : 0;
    const uint64_t p50 = net.latency.Percentile(0.50);
    const uint64_t p99 = net.latency.Percentile(0.99);
    std::printf("%-8s %8d %10zu %12.1f %10llu %10llu %14.1f\n", "network",
                threads, net.ops, net.qps(),
                static_cast<unsigned long long>(p50),
                static_cast<unsigned long long>(p99), append_rate);
    report.BeginRow();
    report.Add("mode", "mixed");
    report.Add("threads", threads);
    report.Add("ops", net.ops);
    report.Add("seconds", net.seconds);
    report.Add("qps", net.qps());
    report.Add("latency_p50_us", p50);
    report.Add("latency_p99_us", p99);
    report.Add("appended", appended.load());
    report.Add("appends_per_sec", append_rate);
    report.Add("hardware_concurrency", hardware);
  }

  const server::ServerStats stats = (*server)->StatsSnapshot();
  std::printf("\nserver counters: sessions=%llu queries=%llu "
              "rejected_busy=%llu bytes_out=%llu server_p99=%lluus\n",
              static_cast<unsigned long long>(stats.sessions_opened),
              static_cast<unsigned long long>(stats.queries),
              static_cast<unsigned long long>(stats.rejected_busy),
              static_cast<unsigned long long>(stats.bytes_out),
              static_cast<unsigned long long>(stats.query_latency_p99_us));

  // ---- registry snapshot: the process-wide registry (engine, WAL, VFS)
  // plus the server's own session/frame instruments, flattened into rows
  // so the JSON carries the same telemetry a METRICS scrape would.
  auto snapshot = [&](const obs::Registry& registry) {
    for (const obs::Registry::Sample& s : registry.Samples()) {
      if (s.value == 0) continue;
      report.BeginRow();
      report.Add("metric", s.name);
      report.Add("labels", s.labels);
      report.Add("value", s.value);
    }
  };
  snapshot(obs::Registry::Default());
  snapshot((*server)->registry());

  (*server)->Join();
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);

  std::printf("\nexpected shape: network qps tracks local qps within a "
              "small constant factor (loopback framing + CRC per frame); "
              "p99 stays the same order as p50 at thread counts within the "
              "session pool; the mixed writer keeps landing versions.\n");
  return report.Write(bench::JsonPathFromArgs(argc, argv)) ? 0 : 1;
}
