// E7 — Appendix C.2: the worst-case key-mutation workload at 3.33% and
// 6.66%, interpolating between the two Fig. 14 settings.

#include "storage_sweep.h"
#include "synth/xmark.h"
#include "xml/serializer.h"

int main(int argc, char** argv) {
  using namespace xarch;
  bench::SweepOptions options;
  bench::JsonReport report("bench_appc2_worst_case");
  options.json = &report;
  options.with_cumulative = false;
  options.with_compression = true;

  for (double pct : {3.33, 6.66}) {
    synth::XMarkGenerator::Options gen_options;
    gen_options.items = 20;
    gen_options.people = 35;
    gen_options.open_auctions = 20;
    synth::XMarkGenerator gen(gen_options);
    bool first = true;
    bench::RunStorageSweep(
        "Appendix C.2 Auction Data, key mutation of " + std::to_string(pct) +
            "%% of elements per version",
        synth::XMarkGenerator::KeySpecText(), 20,
        [&] {
          if (!first) gen.MutateKeys(pct);
          first = false;
          return gen.Current();
        },
        options);
  }
  if (!report.Write(bench::JsonPathFromArgs(argc, argv))) return 1;
  return 0;
}
