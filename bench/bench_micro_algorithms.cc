// E9 — micro-benchmarks (google-benchmark) for the Sec. 4 analyses:
//  - Annotate Keys is O(N h (Σ m_i + q)): linear in document size;
//  - Nested Merge is O(α N log N);
//  - supporting substrate throughput: Myers line diff, LZSS, canonical
//    form + fingerprints, VersionSet operations.

#include <benchmark/benchmark.h>

#include "compress/lzss.h"
#include "core/archive.h"
#include "diff/edit_script.h"
#include "keys/annotate.h"
#include "keys/key_spec.h"
#include "synth/omim.h"
#include "util/version_set.h"
#include "xml/canonical.h"
#include "xml/serializer.h"

namespace {

using namespace xarch;

keys::KeySpecSet OmimSpec() {
  auto spec = keys::ParseKeySpecSet(synth::OmimGenerator::KeySpecText());
  return std::move(*spec);
}

xml::NodePtr OmimDoc(size_t records) {
  synth::OmimGenerator::Options options;
  options.initial_records = records;
  synth::OmimGenerator gen(options);
  return gen.NextVersion();
}

void BM_AnnotateKeys(benchmark::State& state) {
  keys::KeySpecSet spec = OmimSpec();
  xml::NodePtr doc = OmimDoc(state.range(0));
  size_t nodes = doc->CountNodes();
  for (auto _ : state) {
    auto keyed = keys::AnnotateKeys(*doc, spec);
    benchmark::DoNotOptimize(keyed);
  }
  state.SetItemsProcessed(state.iterations() * nodes);
}
BENCHMARK(BM_AnnotateKeys)->Arg(50)->Arg(200)->Arg(800);

void BM_NestedMergeIdenticalVersion(benchmark::State& state) {
  // Re-merging an identical version: the pure merge cost (α = N).
  xml::NodePtr doc = OmimDoc(state.range(0));
  size_t nodes = doc->CountNodes();
  for (auto _ : state) {
    state.PauseTiming();
    core::Archive archive(OmimSpec());
    Status st = archive.AddVersion(*doc);
    state.ResumeTiming();
    st = archive.AddVersion(*doc);
    benchmark::DoNotOptimize(st);
  }
  state.SetItemsProcessed(state.iterations() * nodes);
}
BENCHMARK(BM_NestedMergeIdenticalVersion)->Arg(50)->Arg(200)->Arg(800);

void BM_NestedMergeDailyChanges(benchmark::State& state) {
  // The realistic accretive case: merge a day's changes into an archive.
  synth::OmimGenerator::Options options;
  options.initial_records = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    synth::OmimGenerator gen(options);
    core::Archive archive(OmimSpec());
    Status st = archive.AddVersion(*gen.NextVersion());
    xml::NodePtr next = gen.NextVersion();
    state.ResumeTiming();
    st = archive.AddVersion(*next);
    benchmark::DoNotOptimize(st);
  }
}
BENCHMARK(BM_NestedMergeDailyChanges)->Arg(50)->Arg(200)->Arg(800);

void BM_RetrieveVersion(benchmark::State& state) {
  synth::OmimGenerator::Options options;
  options.initial_records = 200;
  synth::OmimGenerator gen(options);
  core::Archive archive(OmimSpec());
  for (int v = 0; v < 10; ++v) {
    Status st = archive.AddVersion(*gen.NextVersion());
    (void)st;
  }
  Version v = 1;
  for (auto _ : state) {
    auto doc = archive.RetrieveVersion(1 + (v++ % 10));
    benchmark::DoNotOptimize(doc);
  }
}
BENCHMARK(BM_RetrieveVersion);

void BM_MyersLineDiff(benchmark::State& state) {
  synth::OmimGenerator::Options options;
  options.initial_records = 200;
  synth::OmimGenerator gen(options);
  std::string a = xml::Serialize(*gen.NextVersion());
  std::string b = xml::Serialize(*gen.NextVersion());
  for (auto _ : state) {
    auto script = diff::LineDiffText(a, b);
    benchmark::DoNotOptimize(script);
  }
  state.SetBytesProcessed(state.iterations() * (a.size() + b.size()));
}
BENCHMARK(BM_MyersLineDiff);

void BM_LzssCompress(benchmark::State& state) {
  synth::OmimGenerator::Options options;
  options.initial_records = 200;
  synth::OmimGenerator gen(options);
  std::string text = xml::Serialize(*gen.NextVersion());
  for (auto _ : state) {
    auto out = compress::LzssCompress(text);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() * text.size());
}
BENCHMARK(BM_LzssCompress);

void BM_CanonicalizeAndFingerprint(benchmark::State& state) {
  xml::NodePtr doc = OmimDoc(100);
  for (auto _ : state) {
    auto digest = xml::Fingerprint(*doc);
    benchmark::DoNotOptimize(digest);
  }
}
BENCHMARK(BM_CanonicalizeAndFingerprint);

void BM_VersionSetAccretiveAdd(benchmark::State& state) {
  for (auto _ : state) {
    VersionSet set;
    for (Version v = 1; v <= 1000; ++v) set.Add(v);
    benchmark::DoNotOptimize(set);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_VersionSetAccretiveAdd);

void BM_VersionSetGapOperations(benchmark::State& state) {
  VersionSet a, b;
  for (Version v = 1; v <= 1000; v += 2) a.Add(v);
  for (Version v = 2; v <= 1000; v += 3) b.Add(v);
  for (auto _ : state) {
    VersionSet u = a;
    u.UnionWith(b);
    auto m = a.Minus(b);
    auto i = a.IntersectWith(b);
    benchmark::DoNotOptimize(u);
    benchmark::DoNotOptimize(m);
    benchmark::DoNotOptimize(i);
  }
}
BENCHMARK(BM_VersionSetGapOperations);

}  // namespace

BENCHMARK_MAIN();
