// E16 — concurrency: read-query throughput scaling and mixed ingest+query
// behaviour of the thread-safe Store.
//
// Readers share one Store instance. For each backend and workload the
// bench measures queries/second at 1/2/4/8 client threads (a shared atomic
// work queue, so threads load-balance) and reports the speedup over the
// 1-thread baseline: near-linear scaling for the shared-lock backends
// (archive, incr-diff), flat for exclusive-read extmem — the cost of a
// read path that mutates I/O counters. A mixed section runs one ingest
// writer against query readers to show writers still make progress.
//
// A sharded section sweeps the "sharded" backend over K=1/2/4/8 key-range
// shards (docs/SHARDING.md) × the same thread counts: bulk-ingest wall
// time (the per-shard merge passes fan out on a thread pool) and read
// throughput (scatter/gather point+range, routed point). On a 1-CPU
// machine both are expected flat — the JSON records
// hardware_concurrency with every row so readers can tell flat-by-design
// from flat-by-hardware.
//
// `--smoke` shrinks the workload for CI; `--json out.json` records rows;
// `--shards K` restricts the sharded sweep to a single shard count (the
// TSan smoke uses `--smoke --shards 4`). Thread counts beyond
// std::thread::hardware_concurrency() cannot speed anything up (the
// scaling targets assume >= 4 cores, as on CI runners); the hardware
// figure is printed and recorded with every row.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "json_report.h"
#include "synth/xmark.h"
#include "xarch/store.h"
#include "xarch/store_registry.h"
#include "xml/serializer.h"

namespace {

using namespace xarch;

struct Config {
  bool smoke = false;
  int versions = 24;
  int ops_per_thread = 64;  // at 1 thread; total ops scale with threads
  std::vector<int> thread_counts = {1, 2, 4, 8};
  std::vector<int> shard_counts = {1, 2, 4, 8};
};

/// `shards` > 0 opens the "sharded" backend over K key-range shards of
/// `backend`; 0 opens `backend` directly. `ingest_seconds`, when given,
/// receives the bulk-load wall time (one merge pass per shard, fanned
/// out on the shared thread pool).
std::unique_ptr<Store> MakeStore(const std::string& backend,
                                 const std::vector<std::string>& versions,
                                 bool use_index, size_t shards = 0,
                                 double* ingest_seconds = nullptr) {
  StoreOptions options;
  auto spec = keys::ParseKeySpecSet(synth::XMarkGenerator::KeySpecText());
  if (!spec.ok()) {
    std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
    std::exit(1);
  }
  options.spec = std::move(*spec);
  options.use_index = use_index;
  std::string name = backend;
  if (shards > 0) {
    name = "sharded";
    options.inner = backend;
    options.shards = shards;
  }
  auto store = StoreRegistry::Create(name, std::move(options));
  if (!store.ok()) {
    std::fprintf(stderr, "%s: %s\n", name.c_str(),
                 store.status().ToString().c_str());
    std::exit(1);
  }
  // Batched bulk load: one merge pass and one index publish for the
  // whole corpus (per-version Append would rebuild the index each time).
  std::vector<std::string_view> views(versions.begin(), versions.end());
  const auto t0 = std::chrono::steady_clock::now();
  if (Status st = (*store)->AppendBatch(views); !st.ok()) {
    std::fprintf(stderr, "%s ingest: %s\n", name.c_str(),
                 st.ToString().c_str());
    std::exit(1);
  }
  if (ingest_seconds != nullptr) {
    *ingest_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  }
  return std::move(store).value();
}

/// One query against the shared store; exits on error (a bench, not a
/// recovery path).
void RunQuery(Store& store, const std::string& q) {
  CountingSink sink;
  if (Status st = store.Query(q, sink); !st.ok()) {
    std::fprintf(stderr, "query \"%s\": %s\n", q.c_str(),
                 st.ToString().c_str());
    std::exit(1);
  }
}

struct Throughput {
  double seconds = 0;
  size_t ops = 0;
  double qps() const { return seconds > 0 ? ops / seconds : 0; }
};

/// `threads` client threads drain a shared queue of `total_ops` queries
/// (round-robin over `queries`) against one store.
Throughput MeasureReads(Store& store, const std::vector<std::string>& queries,
                        int threads, size_t total_ops) {
  std::atomic<size_t> next{0};
  std::atomic<bool> go{false};
  auto worker = [&] {
    while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
    for (;;) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= total_ops) return;
      RunQuery(store, queries[i % queries.size()]);
    }
  };
  // Spawn first, time from the release barrier: thread startup cost must
  // not be billed to the measured queries (it dwarfs µs-scale lookups).
  std::vector<std::thread> pool;
  for (int t = 1; t < threads; ++t) pool.emplace_back(worker);
  const auto t0 = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  worker();
  for (auto& thread : pool) thread.join();
  const auto t1 = std::chrono::steady_clock::now();
  Throughput out;
  out.seconds = std::chrono::duration<double>(t1 - t0).count();
  out.ops = total_ops;
  return out;
}

struct MixedResult {
  Throughput reads;
  size_t appended = 0;
  double append_seconds = 0;
};

/// One writer appends `extra` fresh versions (yielding between appends)
/// while `threads` readers drain their query quota; both sides are timed.
MixedResult MeasureMixed(Store& store, const std::vector<std::string>& extra,
                         const std::vector<std::string>& queries, int threads,
                         size_t total_ops) {
  MixedResult result;
  std::thread writer([&] {
    const auto w0 = std::chrono::steady_clock::now();
    for (const std::string& text : extra) {
      if (store.Append(text).ok()) ++result.appended;
      std::this_thread::yield();
    }
    result.append_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - w0)
            .count();
  });
  result.reads = MeasureReads(store, queries, threads, total_ops);
  writer.join();
  return result;
}

/// Value of `--flag N`, or `fallback` when absent.
long IntFlagOr(int argc, char** argv, const char* flag, long fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == flag) {
      return std::strtol(argv[i + 1], nullptr, 10);
    }
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  Config config;
  config.smoke = bench::HasFlag(argc, argv, "--smoke");
  if (config.smoke) {
    config.versions = 8;
    config.ops_per_thread = 16;
    config.thread_counts = {1, 2, 4};
    config.shard_counts = {1, 2, 4};
  }
  const long shards_flag = IntFlagOr(argc, argv, "--shards", 0);
  if (shards_flag > 0) {
    config.shard_counts = {static_cast<int>(shards_flag)};
  }
  bench::JsonReport report("bench_concurrent");
  const unsigned hardware = std::thread::hardware_concurrency();

  synth::XMarkGenerator::Options gen_options;
  gen_options.items = config.smoke ? 8 : 16;
  gen_options.people = config.smoke ? 14 : 30;
  gen_options.open_auctions = config.smoke ? 8 : 16;
  synth::XMarkGenerator gen(gen_options);
  std::vector<std::string> texts, extra;
  for (int v = 0; v < config.versions; ++v) {
    texts.push_back(xml::Serialize(*gen.Current()));
    gen.MutateRandom(config.smoke ? 8.0 : 16.0);
  }
  const int extra_count = config.smoke ? 4 : 8;
  for (int v = 0; v < extra_count; ++v) {
    extra.push_back(xml::Serialize(*gen.Current()));
    gen.MutateRandom(config.smoke ? 8.0 : 16.0);
  }

  const std::string person = "/site/people/person[@id=\"person0\"]";
  const std::vector<std::pair<std::string, std::vector<std::string>>>
      workloads = {
          {"point", {person + " @ version 1",
                     person + " @ version " + std::to_string(config.versions)}},
          {"history", {person + " history"}},
          {"range", {person + " @ versions 1.." +
                     std::to_string(config.versions)}},
      };
  const std::vector<std::pair<std::string, bool>> backends = {
      {"archive", true},    // the paper's store, timestamp-tree indexed
      {"incr-diff", false},  // delta baseline: query = replay + navigate
      {"extmem", false},     // exclusive reads: the non-scaling contrast
  };

  std::printf("# E16 — concurrent Store throughput (%d versions, "
              "hardware_concurrency=%u%s)\n",
              config.versions, hardware, config.smoke ? ", smoke" : "");
  std::printf("%-10s %-8s %8s %10s %12s %10s\n", "backend", "workload",
              "threads", "ops", "qps", "speedup");

  for (const auto& [backend, use_index] : backends) {
    auto store = MakeStore(backend, texts, use_index);
    for (const auto& [workload, queries] : workloads) {
      RunQuery(*store, queries[0]);  // warm-up (plans, page cache)
      double baseline_qps = 0;
      for (int threads : config.thread_counts) {
        const size_t total_ops =
            static_cast<size_t>(config.ops_per_thread) * threads;
        Throughput reads = MeasureReads(*store, queries, threads, total_ops);
        if (threads == 1) baseline_qps = reads.qps();
        const double speedup =
            baseline_qps > 0 ? reads.qps() / baseline_qps : 0;
        std::printf("%-10s %-8s %8d %10zu %12.1f %9.2fx\n", backend.c_str(),
                    workload.c_str(), threads, reads.ops, reads.qps(),
                    speedup);
        report.BeginRow();
        report.Add("mode", "read");
        report.Add("backend", backend);
        report.Add("workload", workload);
        report.Add("threads", threads);
        report.Add("ops", reads.ops);
        report.Add("seconds", reads.seconds);
        report.Add("qps", reads.qps());
        report.Add("speedup_vs_1", speedup);
        report.Add("hardware_concurrency", hardware);
      }
    }
  }

  std::printf("\n# sharded archive: K key-range shards, parallel ingest + "
              "scatter/gather reads\n");
  std::printf("%-10s %-8s %8s %10s %12s %10s\n", "shards", "workload",
              "threads", "ops", "qps", "speedup");
  for (int shard_count : config.shard_counts) {
    double ingest_seconds = 0;
    auto store = MakeStore("archive", texts, /*use_index=*/true,
                           static_cast<size_t>(shard_count), &ingest_seconds);
    std::printf("%-10d %-8s %8s %10d %12.3fs %10s\n", shard_count, "ingest",
                "-", config.versions, ingest_seconds, "-");
    report.BeginRow();
    report.Add("mode", "sharded_ingest");
    report.Add("shards", shard_count);
    report.Add("versions", config.versions);
    report.Add("seconds", ingest_seconds);
    report.Add("hardware_concurrency", hardware);
    for (const auto& [workload, queries] : workloads) {
      RunQuery(*store, queries[0]);  // warm-up
      double baseline_qps = 0;
      for (int threads : config.thread_counts) {
        const size_t total_ops =
            static_cast<size_t>(config.ops_per_thread) * threads;
        Throughput reads = MeasureReads(*store, queries, threads, total_ops);
        if (threads == 1) baseline_qps = reads.qps();
        const double speedup =
            baseline_qps > 0 ? reads.qps() / baseline_qps : 0;
        std::printf("%-10d %-8s %8d %10zu %12.1f %9.2fx\n", shard_count,
                    workload.c_str(), threads, reads.ops, reads.qps(),
                    speedup);
        report.BeginRow();
        report.Add("mode", "sharded_read");
        report.Add("shards", shard_count);
        report.Add("workload", workload);
        report.Add("threads", threads);
        report.Add("ops", reads.ops);
        report.Add("seconds", reads.seconds);
        report.Add("qps", reads.qps());
        report.Add("speedup_vs_1", speedup);
        report.Add("hardware_concurrency", hardware);
      }
    }
  }

  std::printf("\n# mixed ingest+query (1 writer, %d extra versions)\n",
              extra_count);
  std::printf("%-10s %8s %10s %12s %14s\n", "backend", "threads", "ops",
              "read qps", "appends/sec");
  for (const auto& [backend, use_index] : backends) {
    for (int threads : config.thread_counts) {
      auto store = MakeStore(backend, texts, use_index);
      const size_t total_ops =
          static_cast<size_t>(config.ops_per_thread) * threads;
      // Mixed phase uses the cheap workloads so the writer finishes
      // within the read quota on any machine.
      MixedResult mixed = MeasureMixed(
          *store, extra,
          {person + " @ version 1", person + " history"}, threads, total_ops);
      const double append_rate = mixed.append_seconds > 0
                                     ? mixed.appended / mixed.append_seconds
                                     : 0;
      std::printf("%-10s %8d %10zu %12.1f %14.1f\n", backend.c_str(), threads,
                  mixed.reads.ops, mixed.reads.qps(), append_rate);
      report.BeginRow();
      report.Add("mode", "mixed");
      report.Add("backend", backend);
      report.Add("threads", threads);
      report.Add("ops", mixed.reads.ops);
      report.Add("seconds", mixed.reads.seconds);
      report.Add("qps", mixed.reads.qps());
      report.Add("appended", mixed.appended);
      report.Add("appends_per_sec", append_rate);
      report.Add("hardware_concurrency", hardware);
    }
  }

  std::printf("\nexpected shape: archive and incr-diff read throughput "
              "scales with threads up to the core count (shared-lock "
              "readers); extmem stays flat (exclusive reads); sharded "
              "ingest time drops as K grows until shards outnumber cores "
              "(flat on a 1-CPU machine); in the mixed section the writer "
              "keeps landing versions while readers run.\n");
  return report.Write(bench::JsonPathFromArgs(argc, argv)) ? 0 : 1;
}
