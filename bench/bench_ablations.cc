// E13 — ablations of the design choices DESIGN.md calls out:
//  1. timestamp inheritance (Sec. 1) on/off — space;
//  2. interval encoding of timestamps vs exhaustive version lists — space;
//  3. frontier strategy: buckets vs SCCS weave (further compaction) — space;
//  4. fingerprint strength: full 64-bit vs truncated — merge time (the
//     collision-verification cost of Sec. 4.3).

#include <chrono>
#include <cstdio>

#include "core/archive.h"
#include "json_report.h"
#include "synth/omim.h"
#include "synth/words.h"
#include "util/random.h"
#include "xml/serializer.h"

namespace {

using namespace xarch;

core::Archive BuildOmim(core::ArchiveOptions options, int versions) {
  synth::OmimGenerator::Options gen_options;
  gen_options.initial_records = 100;
  gen_options.insert_ratio = 0.01;
  gen_options.modify_ratio = 0.01;
  synth::OmimGenerator gen(gen_options);
  auto spec = keys::ParseKeySpecSet(synth::OmimGenerator::KeySpecText());
  core::Archive archive(std::move(*spec), options);
  for (int v = 0; v < versions; ++v) {
    Status st = archive.AddVersion(*gen.NextVersion());
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      std::exit(1);
    }
  }
  return archive;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport report("bench_ablations");
  constexpr int kVersions = 15;
  std::printf("# E13 — design ablations (OMIM-like, %d versions)\n\n",
              kVersions);

  // --- 1 & 2: serialization choices on the same archive.
  {
    core::Archive archive = BuildOmim({}, kVersions);
    core::ArchiveSerializeOptions base;
    core::ArchiveSerializeOptions no_inherit = base;
    no_inherit.inherit_timestamps = false;
    core::ArchiveSerializeOptions no_interval = base;
    no_interval.interval_encoding = false;
    size_t base_size = archive.ToXml(base).size();
    size_t no_inherit_size = archive.ToXml(no_inherit).size();
    size_t no_interval_size = archive.ToXml(no_interval).size();
    std::printf("timestamp inheritance:   on %9zu bytes   off %9zu bytes "
                "(+%.1f%%)\n",
                base_size, no_inherit_size,
                100.0 * (no_inherit_size - base_size) / base_size);
    std::printf("interval encoding:       on %9zu bytes   off %9zu bytes "
                "(+%.1f%%)\n",
                base_size, no_interval_size,
                100.0 * (no_interval_size - base_size) / base_size);
    report.BeginRow();
    report.Add("ablation", "timestamp_inheritance_off");
    report.Add("base_bytes", base_size);
    report.Add("ablated_bytes", no_inherit_size);
    report.BeginRow();
    report.Add("ablation", "interval_encoding_off");
    report.Add("base_bytes", base_size);
    report.Add("ablated_bytes", no_interval_size);
  }

  // --- 3: frontier strategy on the paper's free-text scenario ("some data
  // may be free text represented as a sequence of <line> elements",
  // Sec. 2): sections of unkeyed lines below a frontier <body>, a few
  // lines changing per version. Buckets duplicate the whole body on any
  // change; the weave (further compaction, Fig. 10) stores shared lines
  // once.
  {
    auto build = [](core::FrontierStrategy strategy) {
      Rng rng(101);
      std::vector<std::vector<std::string>> sections(20);
      for (auto& lines : sections) {
        for (int l = 0; l < 15; ++l) {
          lines.push_back(synth::Sentence(rng, 6, 14));
        }
      }
      core::ArchiveOptions options;
      options.frontier = strategy;
      auto spec = keys::ParseKeySpecSet(
          "(/, (doc, {}))\n(/doc, (section, {title}))\n"
          "(/doc/section, (body, {}))");
      core::Archive archive(std::move(*spec), options);
      for (int v = 0; v < 12; ++v) {
        // Change one line in a quarter of the sections.
        if (v > 0) {
          for (size_t s = 0; s < sections.size(); s += 4) {
            sections[s][rng.Uniform(0, sections[s].size() - 1)] =
                synth::Sentence(rng, 6, 14);
          }
        }
        xml::NodePtr doc = xml::Node::Element("doc");
        for (size_t s = 0; s < sections.size(); ++s) {
          xml::Node* section = doc->AddElement("section");
          section->AddElementWithText("title", "sec" + std::to_string(s));
          xml::Node* body = section->AddElement("body");
          for (const auto& line : sections[s]) {
            body->AddElementWithText("line", line);
          }
        }
        Status st = archive.AddVersion(*doc);
        if (!st.ok()) {
          std::fprintf(stderr, "%s\n", st.ToString().c_str());
          std::exit(1);
        }
      }
      return archive.ToXml().size();
    };
    size_t buckets = build(core::FrontierStrategy::kBuckets);
    size_t weave = build(core::FrontierStrategy::kWeave);
    std::printf("frontier strategy (free-text lines): buckets %9zu bytes   "
                "weave %9zu bytes (%.1f%% of buckets)\n",
                buckets, weave, 100.0 * weave / buckets);
    report.BeginRow();
    report.Add("ablation", "frontier_weave");
    report.Add("base_bytes", buckets);
    report.Add("ablated_bytes", weave);
  }

  // --- 4: fingerprint strength vs merge time (heavy truncation forces
  // frequent fingerprint ties, each verified against actual key values).
  {
    for (int bits : {64, 8, 2}) {
      core::ArchiveOptions options;
      options.annotate.fingerprint_bits = bits;
      auto t0 = std::chrono::steady_clock::now();
      core::Archive archive = BuildOmim(options, kVersions);
      auto t1 = std::chrono::steady_clock::now();
      const double build_ms =
          std::chrono::duration<double, std::milli>(t1 - t0).count();
      std::printf("fingerprint bits %2d: archive build %8.1f ms "
                  "(truncation forces the Sec. 4.3 value verification)\n",
                  bits, build_ms);
      report.BeginRow();
      report.Add("ablation", "fingerprint_bits");
      report.Add("bits", bits);
      report.Add("build_ms", build_ms);
    }
  }
  return report.Write(bench::JsonPathFromArgs(argc, argv)) ? 0 : 1;
}
