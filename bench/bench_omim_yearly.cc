// E8 — the Sec. 1 headline prediction for OMIM: "we should be able to
// construct a compacted archive for a year in less than 1.12 times the
// space of the last version. Moreover, the archive, under XMill, will
// compress to 40% of the size of the last version."
//
// We archive 90 daily versions at OMIM's measured change ratios and report
// the archive/last-version ratio plus the compressed-archive percentage,
// extrapolated to a year the same way the paper extrapolated its 100 days.

#include <cstdio>

#include "compress/container.h"
#include "core/archive.h"
#include "json_report.h"
#include "synth/omim.h"
#include "xml/serializer.h"

int main(int argc, char** argv) {
  using namespace xarch;
  bench::JsonReport report("bench_omim_yearly");
  constexpr int kDays = 90;
  synth::OmimGenerator::Options gen_options;
  gen_options.initial_records = 400;
  // The paper's measured OMIM ratios (Sec. 5.3): 0.02%/0.2%/0.03%.
  gen_options.delete_ratio = 0.0002;
  gen_options.insert_ratio = 0.002;
  gen_options.modify_ratio = 0.0003;
  synth::OmimGenerator gen(gen_options);

  auto spec = keys::ParseKeySpecSet(synth::OmimGenerator::KeySpecText());
  if (!spec.ok()) {
    std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
    return 1;
  }
  core::Archive archive(std::move(*spec));
  // Indentation-free serialization on both sides (the archive nests two
  // levels deeper; indentation would bias its byte count).
  xml::SerializeOptions ver_ser;
  ver_ser.indent_width = 0;
  core::ArchiveSerializeOptions arch_ser;
  arch_ser.indent_width = 0;
  size_t last_version = 0;
  std::printf("# E8 — OMIM yearly archive overhead (daily versions)\n");
  std::printf("%-5s %12s %12s %8s %10s\n", "day", "version", "archive",
              "ratio", "xmill(arch)");
  for (int day = 1; day <= kDays; ++day) {
    auto doc = gen.NextVersion();
    last_version = xml::Serialize(*doc, ver_ser).size();
    Status st = archive.AddVersion(*doc);
    if (!st.ok()) {
      std::fprintf(stderr, "day %d: %s\n", day, st.ToString().c_str());
      return 1;
    }
    if (day % 15 == 0 || day == 1) {
      std::string xml = archive.ToXml(arch_ser);
      auto compressed =
          compress::XmlContainerCompressor::CompressText(xml);
      std::printf("%-5d %12zu %12zu %8.3f %10zu\n", day, last_version,
                  xml.size(),
                  static_cast<double>(xml.size()) / last_version,
                  compressed.ok() ? compressed->size() : 0);
      report.BeginRow();
      report.Add("day", day);
      report.Add("version_bytes", last_version);
      report.Add("archive_bytes", xml.size());
      report.Add("ratio", static_cast<double>(xml.size()) / last_version);
      report.Add("xmill_archive_bytes",
                 compressed.ok() ? compressed->size() : size_t{0});
    }
  }
  std::string xml = archive.ToXml(arch_ser);
  auto compressed = compress::XmlContainerCompressor::CompressText(xml);
  double ratio = static_cast<double>(xml.size()) / last_version;
  double daily_overhead = (ratio - 1.0) / kDays;
  double yearly = 1.0 + daily_overhead * 365;
  std::printf("\nafter %d days: archive = %.3fx last version\n", kDays, ratio);
  std::printf("extrapolated to 365 days: %.3fx (paper predicts < 1.12x)\n",
              yearly);
  std::printf("compressed archive = %.0f%% of last version "
              "(paper: ~40%% with real XMill+MD-heavy text)\n",
              100.0 * (compressed.ok() ? compressed->size() : 0) /
                  last_version);
  report.BeginRow();
  report.Add("day", kDays);
  report.Add("final_ratio", ratio);
  report.Add("extrapolated_365d_ratio", yearly);
  return report.Write(bench::JsonPathFromArgs(argc, argv)) ? 0 : 1;
}
