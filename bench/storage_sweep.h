#ifndef XARCH_BENCH_STORAGE_SWEEP_H_
#define XARCH_BENCH_STORAGE_SWEEP_H_

// Shared driver for the storage experiments (Fig. 11-14, Appendix C):
// feeds a sequence of versions to every storage strategy of Sec. 5 —
// resolved through the Store v2 registry — and prints one row per version
// with all the byte counts the paper plots.

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "json_report.h"
#include "compress/container.h"
#include "compress/lzss.h"
#include "keys/key_spec.h"
#include "xarch/store.h"
#include "xarch/store_registry.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xarch::bench {

struct SweepOptions {
  bool with_cumulative = true;   ///< include the V1+cumu-diffs line (Fig. 11)
  bool with_compression = true;  ///< include the compressed lines (Fig. 12+)
  /// Registry name of the archive line ("archive" or "archive-weave").
  std::string archive_backend = "archive";
  /// When set, every printed row is mirrored into the report (--json).
  JsonReport* json = nullptr;
};

/// Serialization used for all byte counts: line-structured (so line diffs
/// are element-aligned, as the paper's data was formatted) but without
/// indentation, which would bias against the deeper-nested archive.
inline std::string SerializeForBench(const xml::Node& node) {
  xml::SerializeOptions options;
  options.pretty = true;
  options.indent_width = 0;
  return xml::Serialize(node, options);
}

/// Runs the sweep: `next_version()` must return the next document per call.
inline void RunStorageSweep(const std::string& title,
                            const char* key_spec_text, int versions,
                            const std::function<xml::NodePtr()>& next_version,
                            const SweepOptions& options) {
  auto make_store = [&](const char* name,
                        bool with_spec) -> std::unique_ptr<Store> {
    StoreOptions store_options;
    if (with_spec) {
      auto spec = keys::ParseKeySpecSet(key_spec_text);
      if (!spec.ok()) {
        std::fprintf(stderr, "bad key spec: %s\n",
                     spec.status().ToString().c_str());
        std::exit(1);
      }
      store_options.spec = std::move(*spec);
    }
    auto store = StoreRegistry::Create(name, std::move(store_options));
    if (!store.ok()) {
      std::fprintf(stderr, "store \"%s\": %s\n", name,
                   store.status().ToString().c_str());
      std::exit(1);
    }
    return std::move(store).value();
  };
  std::unique_ptr<Store> archive =
      make_store(options.archive_backend.c_str(), /*with_spec=*/true);
  std::unique_ptr<Store> inc = make_store("incr-diff", /*with_spec=*/false);
  std::unique_ptr<Store> cumu = make_store("cum-diff", /*with_spec=*/false);
  std::unique_ptr<Store> all = make_store("full-copy", /*with_spec=*/false);

  std::printf("# %s\n", title.c_str());
  std::printf("%-3s %10s %10s %10s", "v", "version", "archive", "V1+inc");
  if (options.with_cumulative) std::printf(" %10s", "V1+cumu");
  if (options.with_compression) {
    std::printf(" %12s %12s %12s %12s", "gzip(inc)", "gzip(cumu)",
                "xmill(arch)", "xmill(V1..Vi)");
  }
  std::printf("\n");

  for (int v = 1; v <= versions; ++v) {
    xml::NodePtr doc = next_version();
    std::string text = SerializeForBench(*doc);
    for (Store* store : {archive.get(), inc.get(), cumu.get(), all.get()}) {
      if (Status st = store->Append(text); !st.ok()) {
        std::fprintf(stderr, "v%d %s: %s\n", v, store->name().c_str(),
                     st.ToString().c_str());
        std::exit(1);
      }
    }

    std::string archive_xml = archive->StoredBytes();
    std::printf("%-3d %10zu %10zu %10zu", v, text.size(), archive_xml.size(),
                inc->ByteSize());
    if (options.json != nullptr) {
      options.json->BeginRow();
      options.json->Add("sweep", title);
      options.json->Add("v", v);
      options.json->Add("version_bytes", text.size());
      options.json->Add("archive_bytes", archive_xml.size());
      options.json->Add("incr_diff_bytes", inc->ByteSize());
    }
    if (options.with_cumulative) {
      std::printf(" %10zu", cumu->ByteSize());
      if (options.json != nullptr) {
        options.json->Add("cum_diff_bytes", cumu->ByteSize());
      }
    }
    if (options.with_compression) {
      size_t gzip_inc = compress::LzssCompress(inc->StoredBytes()).size();
      size_t gzip_cumu =
          compress::LzssCompress(cumu->StoredBytes()).size();
      auto xmill_arch =
          compress::XmlContainerCompressor::CompressText(archive_xml);
      // "xmill(V1+...+Vi)": all versions side by side in one XML tree
      // (Sec. 5), made well-formed with a wrapper element.
      auto xmill_all_or =
          compress::XmlContainerCompressor::CompressText(
              "<all>" + all->StoredBytes() + "</all>");
      size_t xmill_all = xmill_all_or.ok() ? xmill_all_or->size() : 0;
      size_t xmill_arch_bytes = xmill_arch.ok() ? xmill_arch->size() : 0;
      std::printf(" %12zu %12zu %12zu %12zu", gzip_inc, gzip_cumu,
                  xmill_arch_bytes, xmill_all);
      if (options.json != nullptr) {
        options.json->Add("gzip_incr_bytes", gzip_inc);
        options.json->Add("gzip_cum_bytes", gzip_cumu);
        options.json->Add("xmill_archive_bytes", xmill_arch_bytes);
        options.json->Add("xmill_all_versions_bytes", xmill_all);
      }
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace xarch::bench

#endif  // XARCH_BENCH_STORAGE_SWEEP_H_
