// E6 — Appendix C.1: XMark random change ratios 3.33% and 6.66%,
// interpolating between the two Fig. 13 settings.

#include "storage_sweep.h"
#include "synth/xmark.h"
#include "xml/serializer.h"

int main(int argc, char** argv) {
  using namespace xarch;
  bench::SweepOptions options;
  bench::JsonReport report("bench_appc1_xmark_ratio");
  options.json = &report;
  options.with_cumulative = false;
  options.with_compression = true;

  for (double pct : {3.33, 6.66}) {
    synth::XMarkGenerator::Options gen_options;
    gen_options.items = 20;
    gen_options.people = 35;
    gen_options.open_auctions = 20;
    synth::XMarkGenerator gen(gen_options);
    bool first = true;
    bench::RunStorageSweep(
        "Appendix C.1 Auction Data, " + std::to_string(pct) +
            "%% random change ratio",
        synth::XMarkGenerator::KeySpecText(), 20,
        [&] {
          if (!first) gen.MutateRandom(pct);
          first = false;
          return gen.Current();
        },
        options);
  }
  if (!report.Write(bench::JsonPathFromArgs(argc, argv))) return 1;
  return 0;
}
