// E3 — Fig. 12: OMIM and Swiss-Prot storage with compression.
// Reproduces the paper's central result: xmill(archive) beats
// gzip(V1+inc diffs), gzip(V1+cumu diffs) and xmill(V1+...+Vi) — the
// container compressor exploits the archive's XML structure in a way a
// byte compressor over diff scripts cannot.

#include "storage_sweep.h"
#include "synth/omim.h"
#include "synth/swissprot.h"
#include "xml/serializer.h"

int main(int argc, char** argv) {
  using namespace xarch;
  bench::SweepOptions options;
  bench::JsonReport report("bench_fig12_storage_compression");
  options.json = &report;
  options.with_cumulative = false;
  options.with_compression = true;
  options.archive_backend = "archive";  // Store v2 registry name

  {
    synth::OmimGenerator::Options gen_options;
    gen_options.initial_records = 150;
    gen_options.insert_ratio = 0.01;
    gen_options.modify_ratio = 0.005;
    synth::OmimGenerator gen(gen_options);
    bench::RunStorageSweep(
        "Fig. 12(a) OMIM storage incl. compression",
        synth::OmimGenerator::KeySpecText(), 25,
        [&] { return gen.NextVersion(); }, options);
  }
  {
    synth::SwissProtGenerator::Options gen_options;
    gen_options.initial_records = 80;
    synth::SwissProtGenerator gen(gen_options);
    bench::RunStorageSweep(
        "Fig. 12(b) Swiss-Prot storage incl. compression",
        synth::SwissProtGenerator::KeySpecText(), 12,
        [&] { return gen.NextVersion(); }, options);
  }
  std::printf("expected shape: xmill(arch) < gzip(inc) < gzip(cumu), "
              "xmill(V1..Vi); archive within %% of V1+inc raw.\n");
  if (!report.Write(bench::JsonPathFromArgs(argc, argv))) return 1;
  return 0;
}
