// E1 — Fig. 7: "Various statistics of our experiment data": serialized
// size, node count N (elements + text + attributes) and height h of the
// largest version of each dataset. Absolute sizes are scaled down (the
// generators are laptop-sized); N and especially h reproduce the paper's
// shape (OMIM h=5, Swiss-Prot h=6, XMark deeper than both).

#include <cstdio>

#include "json_report.h"
#include "synth/omim.h"
#include "synth/swissprot.h"
#include "synth/xmark.h"
#include "util/strings.h"
#include "xml/serializer.h"

int main(int argc, char** argv) {
  using namespace xarch;
  bench::JsonReport report("bench_fig07_stats");
  std::printf("# Fig. 7 — dataset statistics (largest generated version)\n");
  std::printf("%-12s %14s %12s %8s\n", "Data", "Size", "No. of Nodes(N)",
              "Height(h)");

  auto row = [&](const char* data, const xml::Node& doc) {
    const size_t size = xml::Serialize(doc).size();
    std::printf("%-12s %14s %12s %8d\n", data,
                FormatWithCommas(size).c_str(),
                FormatWithCommas(doc.CountNodes()).c_str(), doc.Height());
    report.BeginRow();
    report.Add("data", data);
    report.Add("size_bytes", size);
    report.Add("nodes", doc.CountNodes());
    report.Add("height", doc.Height());
  };

  {
    synth::OmimGenerator::Options options;
    options.initial_records = 400;
    synth::OmimGenerator gen(options);
    xml::NodePtr doc;
    for (int v = 0; v < 5; ++v) doc = gen.NextVersion();
    row("OMIM", *doc);
  }
  {
    synth::SwissProtGenerator::Options options;
    options.initial_records = 250;
    synth::SwissProtGenerator gen(options);
    xml::NodePtr doc;
    for (int v = 0; v < 5; ++v) doc = gen.NextVersion();
    row("Swiss-Prot", *doc);
  }
  {
    synth::XMarkGenerator::Options options;
    options.items = 60;
    options.people = 90;
    options.open_auctions = 60;
    synth::XMarkGenerator gen(options);
    xml::NodePtr doc = gen.Current();
    row("XMark", *doc);
  }
  std::printf("\npaper (Fig. 7): OMIM 27.0MB/206,466/5  Swiss-Prot "
              "436.2MB/10,903,568/6  XMark 11.2MB/167,864/12\n");
  return report.Write(bench::JsonPathFromArgs(argc, argv)) ? 0 : 1;
}
