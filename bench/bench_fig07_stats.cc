// E1 — Fig. 7: "Various statistics of our experiment data": serialized
// size, node count N (elements + text + attributes) and height h of the
// largest version of each dataset. Absolute sizes are scaled down (the
// generators are laptop-sized); N and especially h reproduce the paper's
// shape (OMIM h=5, Swiss-Prot h=6, XMark deeper than both).

#include <cstdio>

#include "synth/omim.h"
#include "synth/swissprot.h"
#include "synth/xmark.h"
#include "util/strings.h"
#include "xml/serializer.h"

int main() {
  using namespace xarch;
  std::printf("# Fig. 7 — dataset statistics (largest generated version)\n");
  std::printf("%-12s %14s %12s %8s\n", "Data", "Size", "No. of Nodes(N)",
              "Height(h)");

  {
    synth::OmimGenerator::Options options;
    options.initial_records = 400;
    synth::OmimGenerator gen(options);
    xml::NodePtr doc;
    for (int v = 0; v < 5; ++v) doc = gen.NextVersion();
    std::printf("%-12s %14s %12s %8d\n", "OMIM",
                FormatWithCommas(xml::Serialize(*doc).size()).c_str(),
                FormatWithCommas(doc->CountNodes()).c_str(), doc->Height());
  }
  {
    synth::SwissProtGenerator::Options options;
    options.initial_records = 250;
    synth::SwissProtGenerator gen(options);
    xml::NodePtr doc;
    for (int v = 0; v < 5; ++v) doc = gen.NextVersion();
    std::printf("%-12s %14s %12s %8d\n", "Swiss-Prot",
                FormatWithCommas(xml::Serialize(*doc).size()).c_str(),
                FormatWithCommas(doc->CountNodes()).c_str(), doc->Height());
  }
  {
    synth::XMarkGenerator::Options options;
    options.items = 60;
    options.people = 90;
    options.open_auctions = 60;
    synth::XMarkGenerator gen(options);
    xml::NodePtr doc = gen.Current();
    std::printf("%-12s %14s %12s %8d\n", "XMark",
                FormatWithCommas(xml::Serialize(*doc).size()).c_str(),
                FormatWithCommas(doc->CountNodes()).c_str(), doc->Height());
  }
  std::printf("\npaper (Fig. 7): OMIM 27.0MB/206,466/5  Swiss-Prot "
              "436.2MB/10,903,568/6  XMark 11.2MB/167,864/12\n");
  return 0;
}
