// E2 — Fig. 11: OMIM and Swiss-Prot against *cumulative* diffs.
// The cumulative repository retrieves any version with one delta but its
// storage grows quadratically with the number of versions, overtaking both
// the archive and the incremental repository early (the paper: >2x by
// Swiss-Prot version 10).

#include "storage_sweep.h"
#include "synth/omim.h"
#include "synth/swissprot.h"
#include "xml/serializer.h"

int main(int argc, char** argv) {
  using namespace xarch;
  bench::SweepOptions options;
  bench::JsonReport report("bench_fig11_cumulative");
  options.json = &report;
  options.with_cumulative = true;
  options.with_compression = false;

  {
    synth::OmimGenerator::Options gen_options;
    gen_options.initial_records = 150;
    // Slightly busier days than real OMIM so 30 versions show the trend.
    gen_options.insert_ratio = 0.01;
    gen_options.modify_ratio = 0.005;
    synth::OmimGenerator gen(gen_options);
    bench::RunStorageSweep(
        "Fig. 11(a) OMIM: version vs archive vs V1+inc vs V1+cumu",
        synth::OmimGenerator::KeySpecText(), 30,
        [&] { return gen.NextVersion(); }, options);
  }
  {
    synth::SwissProtGenerator::Options gen_options;
    gen_options.initial_records = 80;
    synth::SwissProtGenerator gen(gen_options);
    bench::RunStorageSweep(
        "Fig. 11(b) Swiss-Prot: version vs archive vs V1+inc vs V1+cumu",
        synth::SwissProtGenerator::KeySpecText(), 12,
        [&] { return gen.NextVersion(); }, options);
  }
  std::printf("expected shape: V1+cumu grows quadratically and exceeds the "
              "others; archive stays within a few %% of V1+inc.\n");
  if (!report.Write(bench::JsonPathFromArgs(argc, argv))) return 1;
  return 0;
}
