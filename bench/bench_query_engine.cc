// E15 — the XAQL query engine over an XMark archive: the paper's Sec. 7
// workloads expressed as queries, indexed vs naive evaluation.
//
//  - snapshot of an old version (`/site @ version 1`): timestamp-tree
//    pruned streaming vs the full archive scan;
//  - keyed point lookup + snapshot (`/site/people/person[id=...]`);
//  - element history (`... history`): sorted-key binary search;
//  - range scan (`@ versions a..b`) and key-based diff (`diff a b`).
//
// Probe counters come from Stats() (one evaluation counts both the real
// indexed probes and the children a naive scan would have inspected).
// `--smoke` shrinks the workload for CI; `--json out.json` records rows.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "json_report.h"
#include "obs/metrics.h"
#include "synth/xmark.h"
#include "xarch/store.h"
#include "xarch/store_registry.h"
#include "xml/serializer.h"

namespace {

using namespace xarch;

std::unique_ptr<Store> MakeStore(const std::vector<std::string>& versions,
                                 bool use_index) {
  StoreOptions options;
  auto spec = keys::ParseKeySpecSet(synth::XMarkGenerator::KeySpecText());
  if (!spec.ok()) {
    std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
    std::exit(1);
  }
  options.spec = std::move(*spec);
  options.use_index = use_index;
  auto store = StoreRegistry::Create("archive", std::move(options));
  if (!store.ok()) {
    std::fprintf(stderr, "%s\n", store.status().ToString().c_str());
    std::exit(1);
  }
  std::vector<std::string_view> views(versions.begin(), versions.end());
  if (Status st = (*store)->AppendBatch(views); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    std::exit(1);
  }
  return std::move(store).value();
}

struct QueryCost {
  double micros = 0;
  uint64_t tree_probes = 0;
  uint64_t naive_probes = 0;
  uint64_t comparisons = 0;
  size_t bytes = 0;
};

QueryCost Run(Store& store, const std::string& q) {
  StoreStats before = store.Stats();
  CountingSink sink;
  auto t0 = std::chrono::steady_clock::now();
  Status st = store.Query(q, sink);
  auto t1 = std::chrono::steady_clock::now();
  if (!st.ok()) {
    std::fprintf(stderr, "query \"%s\": %s\n", q.c_str(),
                 st.ToString().c_str());
    std::exit(1);
  }
  StoreStats after = store.Stats();
  QueryCost cost;
  cost.micros = std::chrono::duration<double, std::micro>(t1 - t0).count();
  cost.tree_probes = after.query_tree_probes - before.query_tree_probes;
  cost.naive_probes = after.query_naive_probes - before.query_naive_probes;
  cost.comparisons = after.query_comparisons - before.query_comparisons;
  cost.bytes = sink.bytes();
  return cost;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::HasFlag(argc, argv, "--smoke");
  bench::JsonReport report("bench_query_engine");

  synth::XMarkGenerator::Options gen_options;
  gen_options.items = smoke ? 12 : 32;
  gen_options.people = smoke ? 20 : 60;
  gen_options.open_auctions = smoke ? 12 : 32;
  synth::XMarkGenerator gen(gen_options);
  const int versions = smoke ? 8 : 40;
  std::vector<std::string> texts;
  for (int v = 0; v < versions; ++v) {
    texts.push_back(xml::Serialize(*gen.Current()));
    gen.MutateRandom(smoke ? 10.0 : 30.0);
  }

  auto indexed = MakeStore(texts, /*use_index=*/true);
  auto naive = MakeStore(texts, /*use_index=*/false);
  const size_t archive_nodes = indexed->Stats().node_count;
  std::printf("# E15 — XAQL over XMark: %d versions, %zu archive nodes%s\n",
              versions, archive_nodes, smoke ? " (smoke)" : "");
  // Build the index outside the measurements.
  { CountingSink warm; (void)indexed->Query("/site history", warm); }

  const std::string person_q =
      "/site/people/person[@id=\"person0\"]";
  const std::vector<std::pair<std::string, std::string>> workloads = {
      {"snapshot_v1", "/site @ version 1"},
      {"snapshot_last", "/site @ version " + std::to_string(versions)},
      {"point_lookup", person_q + " @ version 1"},
      {"history", person_q + " history"},
      {"range", person_q + " @ versions 1.." + std::to_string(versions)},
      {"diff", "/site/people diff 1 " + std::to_string(versions)},
  };

  std::printf("%-14s %12s %12s %12s %12s %12s %10s\n", "workload",
              "idx tree", "idx cmp", "naive scan", "idx us", "naive us",
              "bytes");
  for (const auto& [name, q] : workloads) {
    QueryCost with_index = Run(*indexed, q);
    QueryCost without = Run(*naive, q);
    if (with_index.bytes != without.bytes) {
      std::fprintf(stderr, "%s: indexed and naive outputs differ!\n",
                   name.c_str());
      return 1;
    }
    std::printf("%-14s %12llu %12llu %12llu %12.1f %12.1f %10zu\n",
                name.c_str(),
                static_cast<unsigned long long>(with_index.tree_probes),
                static_cast<unsigned long long>(with_index.comparisons),
                static_cast<unsigned long long>(without.naive_probes),
                with_index.micros, without.micros, with_index.bytes);
    report.BeginRow();
    report.Add("workload", name);
    report.Add("query", q);
    report.Add("indexed_tree_probes", with_index.tree_probes);
    report.Add("indexed_comparisons", with_index.comparisons);
    report.Add("naive_scan_probes", without.naive_probes);
    report.Add("archive_nodes", archive_nodes);
    report.Add("indexed_us", with_index.micros);
    report.Add("naive_us", without.micros);
    report.Add("result_bytes", with_index.bytes);
  }

  // ---- instrumentation overhead: the same hot query timed with the
  // obs hot-path mutators live and with the kill switch thrown. The
  // acceptance budget is <= 2%; the measured number is recorded in the
  // JSON trajectory so regressions show up across commits.
  {
    const std::string q = "/site @ version 1";
    const int reps = smoke ? 200 : 400;
    auto time_reps = [&](int n) {
      const auto t0 = std::chrono::steady_clock::now();
      for (int i = 0; i < n; ++i) {
        CountingSink sink;
        if (Status st = indexed->Query(q, sink); !st.ok()) {
          std::fprintf(stderr, "%s\n", st.ToString().c_str());
          std::exit(1);
        }
      }
      const auto t1 = std::chrono::steady_clock::now();
      return std::chrono::duration<double, std::micro>(t1 - t0).count();
    };
    time_reps(reps / 4);  // warm both paths' caches
    // Alternate on/off blocks and keep the best of each side: one long
    // on-then-off pass would fold clock drift and scheduler noise into
    // whichever side ran second, swamping a sub-1% true cost.
    const int pairs = 5;
    double on_us = 0, off_us = 0;
    for (int p = 0; p < pairs; ++p) {
      const double on = time_reps(reps);
      obs::SetMetricsEnabled(false);
      const double off = time_reps(reps);
      obs::SetMetricsEnabled(true);
      if (p == 0 || on < on_us) on_us = on;
      if (p == 0 || off < off_us) off_us = off;
    }
    const double overhead_pct =
        off_us > 0 ? (on_us - off_us) / off_us * 100.0 : 0.0;
    std::printf("\nmetrics overhead: %.1f us on, %.1f us off over %d reps "
                "(%+.2f%%)\n",
                on_us, off_us, reps, overhead_pct);
    report.BeginRow();
    report.Add("workload", "metrics_overhead");
    report.Add("reps", reps);
    report.Add("metrics_on_us", on_us);
    report.Add("metrics_off_us", off_us);
    report.Add("metrics_overhead_pct", overhead_pct);
  }

  // ---- registry snapshot: every counter/gauge/histogram the run bumped,
  // flattened into rows so the JSON carries the telemetry the daemon
  // would expose via METRICS.
  for (const obs::Registry::Sample& s : obs::Registry::Default().Samples()) {
    if (s.value == 0) continue;
    report.BeginRow();
    report.Add("metric", s.name);
    report.Add("labels", s.labels);
    report.Add("value", s.value);
  }

  std::printf("\nexpected shape: old-version snapshots and point lookups "
              "probe far fewer nodes than the %zu-node full scan; the "
              "advantage shrinks for recent versions (α approaches k, "
              "Sec. 7.1).\n",
              archive_nodes);
  return report.Write(bench::JsonPathFromArgs(argc, argv)) ? 0 : 1;
}
