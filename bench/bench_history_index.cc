// E12 — Sec. 7.2: temporal history of a keyed element, linear scan of the
// archive children vs the sorted key index (O(l log d) comparisons).

#include <chrono>
#include <cstdio>

#include "core/archive.h"
#include "index/archive_index.h"
#include "synth/omim.h"

int main() {
  using namespace xarch;
  std::printf("# E12 — history lookup: scan vs key index\n");
  std::printf("%-10s %12s %14s %12s %12s\n", "records", "comparisons",
              "log2 bound", "scan us", "indexed us");
  for (size_t records : {100, 400, 1600}) {
    synth::OmimGenerator::Options gen_options;
    gen_options.initial_records = records;
    synth::OmimGenerator gen(gen_options);
    auto spec = keys::ParseKeySpecSet(synth::OmimGenerator::KeySpecText());
    core::Archive archive(std::move(*spec));
    std::string num;
    for (int v = 0; v < 5; ++v) {
      auto doc = gen.NextVersion();
      if (v == 0) {
        num = doc->FindChild("Record")->FindChild("Num")->TextContent();
      }
      Status st = archive.AddVersion(*doc);
      if (!st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return 1;
      }
    }
    index::ArchiveIndex idx(archive);
    std::vector<core::KeyStep> path = {{"ROOT", {}},
                                       {"Record", {{"Num", num}}}};
    index::ProbeStats stats;
    auto t0 = std::chrono::steady_clock::now();
    auto indexed = idx.History(path, &stats);
    auto t1 = std::chrono::steady_clock::now();
    auto scanned = archive.History(path);
    auto t2 = std::chrono::steady_clock::now();
    if (!indexed.ok() || !scanned.ok() ||
        indexed->ToString() != scanned->ToString()) {
      std::fprintf(stderr, "history mismatch\n");
      return 1;
    }
    double log_bound = 0;
    size_t d = archive.root().children[0]->children.size();
    while ((size_t{1} << static_cast<size_t>(log_bound)) < d) ++log_bound;
    std::printf("%-10zu %12zu %14.0f %12.1f %12.1f\n", records,
                stats.comparisons, 2 * (log_bound + 1),
                std::chrono::duration<double, std::micro>(t2 - t1).count(),
                std::chrono::duration<double, std::micro>(t1 - t0).count());
  }
  std::printf("\nexpected shape: comparisons grow logarithmically with the "
              "record count; the scan grows linearly.\n");
  return 0;
}
