// E12 — Sec. 7.2: temporal history of a keyed element, linear scan of the
// archive children vs the sorted key index (O(l log d) comparisons).
//
// Routed through Store::Query — the same XAQL text runs against an
// indexed and an unindexed archive store, and the comparison counters are
// read off Stats(). This bench is a consumer of the query engine, not of
// index::ArchiveIndex directly.

#include <chrono>
#include <cstdio>

#include "json_report.h"
#include "synth/omim.h"
#include "xarch/store.h"
#include "xarch/store_registry.h"
#include "xml/serializer.h"

int main(int argc, char** argv) {
  using namespace xarch;
  bench::JsonReport report("bench_history_index");
  std::printf("# E12 — history lookup via Store::Query: scan vs key index\n");
  std::printf("%-10s %12s %14s %12s %12s\n", "records", "comparisons",
              "log2 bound", "scan us", "indexed us");
  for (size_t records : {100, 400, 1600}) {
    synth::OmimGenerator::Options gen_options;
    gen_options.initial_records = records;
    synth::OmimGenerator gen(gen_options);
    std::vector<std::string> versions;
    std::string num;
    for (int v = 0; v < 5; ++v) {
      auto doc = gen.NextVersion();
      if (v == 0) {
        num = doc->FindChild("Record")->FindChild("Num")->TextContent();
      }
      versions.push_back(xml::Serialize(*doc));
    }

    auto make = [&](bool use_index) {
      StoreOptions options;
      auto spec = keys::ParseKeySpecSet(synth::OmimGenerator::KeySpecText());
      options.spec = std::move(*spec);
      options.use_index = use_index;
      auto store = StoreRegistry::Create("archive", std::move(options));
      if (!store.ok()) {
        std::fprintf(stderr, "%s\n", store.status().ToString().c_str());
        std::exit(1);
      }
      std::vector<std::string_view> views(versions.begin(), versions.end());
      if (Status st = (*store)->AppendBatch(views); !st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        std::exit(1);
      }
      return std::move(store).value();
    };
    auto indexed = make(true);
    auto scan = make(false);

    const std::string q = "/ROOT/Record[Num=\"" + num + "\"] history";
    StringSink indexed_out, scan_out;
    // Warm-up builds the index outside the timed region; the wildcard
    // history (one line per archived record) also yields d, the actual
    // sibling count the O(l log d) bound is against.
    size_t archived_records = 0;
    {
      StringSink warm;
      if (!indexed->Query("/ROOT/Record[*] history", warm).ok()) {
        std::fprintf(stderr, "warm-up query failed\n");
        return 1;
      }
      for (char c : warm.data()) archived_records += c == '\n';
    }
    const uint64_t comparisons_before = indexed->Stats().query_comparisons;
    auto t0 = std::chrono::steady_clock::now();
    Status indexed_st = indexed->Query(q, indexed_out);
    auto t1 = std::chrono::steady_clock::now();
    Status scan_st = scan->Query(q, scan_out);
    auto t2 = std::chrono::steady_clock::now();
    if (!indexed_st.ok() || !scan_st.ok() ||
        indexed_out.data() != scan_out.data()) {
      std::fprintf(stderr, "history mismatch\n");
      return 1;
    }
    const uint64_t comparisons =
        indexed->Stats().query_comparisons - comparisons_before;
    double log_bound = 0;
    size_t d = archived_records;
    while ((size_t{1} << static_cast<size_t>(log_bound)) < d) ++log_bound;
    const double indexed_us =
        std::chrono::duration<double, std::micro>(t1 - t0).count();
    const double scan_us =
        std::chrono::duration<double, std::micro>(t2 - t1).count();
    std::printf("%-10zu %12llu %14.0f %12.1f %12.1f\n", records,
                static_cast<unsigned long long>(comparisons),
                2 * (log_bound + 1), scan_us, indexed_us);
    report.BeginRow();
    report.Add("records", records);
    report.Add("comparisons", comparisons);
    report.Add("log2_bound", 2 * (log_bound + 1));
    report.Add("scan_us", scan_us);
    report.Add("indexed_us", indexed_us);
  }
  std::printf("\nexpected shape: comparisons grow logarithmically with the "
              "record count; the scan grows linearly.\n");
  return report.Write(bench::JsonPathFromArgs(argc, argv)) ? 0 : 1;
}
