// E5 — Fig. 14: the archiver's worst case — key values of n% of elements
// mutated per version, i.e. deletion + insertion of highly similar
// elements at the same spot. The line diff stores one changed line; the
// key-based archive must store the whole element again. Expected shape:
// the archive grows much faster than V1+inc diffs, while xmill(archive)
// stays ahead of gzip(inc diffs) until the raw archive is roughly 1.2x the
// diff repository.

#include "storage_sweep.h"
#include "synth/xmark.h"
#include "xml/serializer.h"

int main(int argc, char** argv) {
  using namespace xarch;
  bench::SweepOptions options;
  bench::JsonReport report("bench_fig14_worst_case");
  options.json = &report;
  options.with_cumulative = false;
  options.with_compression = true;
  options.archive_backend = "archive";  // Store v2 registry name

  for (double pct : {1.66, 10.0}) {
    synth::XMarkGenerator::Options gen_options;
    gen_options.items = 20;
    gen_options.people = 35;
    gen_options.open_auctions = 20;
    synth::XMarkGenerator gen(gen_options);
    bool first = true;
    bench::RunStorageSweep(
        "Fig. 14 Auction Data, key mutation of " + std::to_string(pct) +
            "% of elements per version",
        synth::XMarkGenerator::KeySpecText(), 20,
        [&] {
          if (!first) gen.MutateKeys(pct);
          first = false;
          return gen.Current();
        },
        options);
  }
  if (!report.Write(bench::JsonPathFromArgs(argc, argv))) return 1;
  return 0;
}
